"""Tests: the extended MPI surface — probe, cancel, sendrecv, waitsome,
status objects."""

import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, Status, build_world

KB = 1024


def make(world):
    ctx0 = world.cluster[0].new_context("app0")
    ctx1 = world.cluster[1].new_context("app1")
    return (world.engine, world.endpoint(0).bind(ctx0),
            world.endpoint(1).bind(ctx1))


class TestProbe:
    def test_iprobe_negative_then_positive(self, either_system):
        world = build_world(either_system)
        engine, h0, h1 = make(world)
        out = {}

        def rank0():
            st = yield from h0.iprobe(1, tag=9)
            out["early"] = st
            yield engine.timeout(0.05)  # let the message land unexpected
            st = yield from h0.iprobe(1, tag=9)
            out["late"] = st
            yield from h0.recv(1, 8 * KB, tag=9)

        def rank1():
            yield from h1.send(0, 8 * KB, tag=9)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert out["early"] is None
        assert out["late"] == Status(source=1, tag=9, nbytes=8 * KB)

    def test_blocking_probe_then_sized_recv(self, either_system):
        """The classic probe pattern: learn the size, then receive."""
        world = build_world(either_system)
        engine, h0, h1 = make(world)
        out = {}

        def rank0():
            st = yield from h0.probe(ANY_SOURCE, ANY_TAG)
            out["status"] = st
            req = yield from h0.recv(st.source, st.nbytes, st.tag)
            out["match"] = (req.match_src, req.match_tag)

        def rank1():
            yield engine.timeout(0.001)
            yield from h1.send(0, 12 * KB, tag=4)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert out["status"].nbytes == 12 * KB
        assert out["match"] == (1, 4)

    def test_probe_does_not_consume(self, either_system):
        world = build_world(either_system)
        engine, h0, h1 = make(world)
        out = {}

        def rank0():
            yield engine.timeout(0.05)
            a = yield from h0.iprobe(1)
            b = yield from h0.iprobe(1)
            out["twice"] = (a, b)
            yield from h0.recv(1, 4 * KB, tag=1)

        def rank1():
            yield from h1.send(0, 4 * KB, tag=1)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        a, b = out["twice"]
        assert a == b and a is not None


class TestCancel:
    def test_cancel_unmatched_receive(self, either_system):
        world = build_world(either_system)
        engine, h0, _h1 = make(world)
        out = {}

        def rank0():
            req = yield from h0.irecv(1, 4 * KB, tag=1)
            ok = yield from h0.cancel(req)
            out["cancelled"] = ok
            out["done"] = req.done

        p0 = engine.spawn(rank0())
        engine.run(p0)
        assert out == {"cancelled": True, "done": False}

    def test_cancel_after_completion_fails(self, either_system):
        world = build_world(either_system)
        engine, h0, h1 = make(world)
        out = {}

        def rank0():
            req = yield from h0.irecv(1, 4 * KB, tag=1)
            yield from h0.wait(req)
            ok = yield from h0.cancel(req)
            out["cancelled"] = ok

        def rank1():
            yield from h1.send(0, 4 * KB, tag=1)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert out["cancelled"] is False

    def test_cancelled_receive_does_not_match(self, either_system):
        """After a cancel, the message goes to a later receive instead."""
        world = build_world(either_system)
        engine, h0, h1 = make(world)
        out = {}

        def rank0():
            victim = yield from h0.irecv(1, 4 * KB, tag=1)
            yield from h0.cancel(victim)
            fresh = yield from h0.irecv(1, 4 * KB, tag=1)
            yield from h0.wait(fresh)
            out["victim_done"] = victim.done
            out["fresh_done"] = fresh.done

        def rank1():
            yield engine.timeout(0.001)
            yield from h1.send(0, 4 * KB, tag=1)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert out == {"victim_done": False, "fresh_done": True}


class TestSendrecvWaitsome:
    def test_sendrecv_exchanges(self, either_system):
        world = build_world(either_system)
        engine, h0, h1 = make(world)
        out = {}

        def rank0():
            st = yield from h0.sendrecv(1, 10 * KB, 1, 20 * KB,
                                        sendtag=1, recvtag=2)
            out["status"] = st

        def rank1():
            st = yield from h1.sendrecv(0, 20 * KB, 0, 10 * KB,
                                        sendtag=2, recvtag=1)
            out["peer"] = st

        p0 = engine.spawn(rank0())
        p1 = engine.spawn(rank1())
        engine.run(engine.all_of([p0, p1]))
        assert out["status"] == Status(source=1, tag=2, nbytes=20 * KB)
        assert out["peer"] == Status(source=0, tag=1, nbytes=10 * KB)

    def test_waitsome_returns_all_completed(self, either_system):
        world = build_world(either_system)
        engine, h0, h1 = make(world)
        out = {}

        def rank0():
            reqs = []
            for tag in (1, 2, 3):
                r = yield from h0.irecv(1, 2 * KB, tag=tag)
                reqs.append(r)
            yield engine.timeout(0.05)  # let several complete (offloaded)
            done = yield from h0.waitsome(reqs)
            out["some"] = done
            yield from h0.waitall(reqs)

        def rank1():
            for tag in (1, 2, 3):
                yield from h1.send(0, 2 * KB, tag=tag)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert len(out["some"]) >= 1


class TestStatusObject:
    def test_from_pending_request_rejected(self, gm):
        from repro.mpi.request import Request, RequestKind
        from repro.sim import Engine

        req = Request(Engine(), RequestKind.RECV, 1, 1, 10)
        with pytest.raises(ValueError):
            Status.from_request(req)

    def test_request_status_property(self, either_system):
        world = build_world(either_system)
        engine, h0, h1 = make(world)
        out = {}

        def rank0():
            req = yield from h0.recv(ANY_SOURCE, 4 * KB, ANY_TAG)
            out["status"] = req.status

        def rank1():
            yield from h1.send(0, 4 * KB, tag=31)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert out["status"] == Status(source=1, tag=31, nbytes=4 * KB)
