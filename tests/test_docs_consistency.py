"""Consistency checks between documentation and the repository.

Docs that reference files which do not exist rot silently; these tests
keep README.md, DESIGN.md and EXPERIMENTS.md anchored to reality.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]


def _read(name: str) -> str:
    return (ROOT / name).read_text()


class TestReadme:
    def test_example_table_files_exist(self):
        for match in re.finditer(r"`examples/([\w.]+\.py)`", _read("README.md")):
            assert (ROOT / "examples" / match.group(1)).exists(), match.group(0)

    def test_quickstart_snippet_runs(self):
        """The README's quickstart code (default windows) must reproduce
        its advertised numbers (~88 MB/s at ~0.98)."""
        from repro import CombSuite, gm_system

        suite = CombSuite(gm_system())
        pt = suite.polling(msg_bytes=100 * 1024, poll_interval_iters=10_000)
        assert 84 < pt.bandwidth_MBps < 93
        assert pt.availability > 0.95

    def test_cli_commands_listed_exist(self):
        from repro.cli import _build_parser

        parser = _build_parser()
        sub = next(a for a in parser._actions
                   if hasattr(a, "choices") and a.choices)
        known = set(sub.choices)
        for cmd in re.findall(r"^comb (\w+)", _read("README.md"), re.M):
            assert cmd in known, f"README documents unknown command {cmd!r}"


class TestDesign:
    def test_every_figure_has_bench_target(self):
        text = _read("DESIGN.md")
        for match in re.finditer(r"`(bench_fig\d+\w*\.py)`", text):
            assert (ROOT / "benchmarks" / match.group(1)).exists(), \
                match.group(0)

    def test_inventory_packages_exist(self):
        text = _read("DESIGN.md")
        for match in re.finditer(r"`repro\.(\w+)`", text):
            pkg = ROOT / "src" / "repro" / match.group(1)
            assert pkg.exists() or pkg.with_suffix(".py").exists(), \
                match.group(0)

    def test_all_14_figures_indexed(self):
        text = _read("DESIGN.md")
        for i in range(4, 18):
            assert f"Fig {i} " in text or f"Fig {i}|" in text or \
                f"| Fig {i} " in text, f"Fig {i} missing from index"


class TestExperiments:
    def test_bench_references_exist(self):
        text = _read("EXPERIMENTS.md")
        for match in re.finditer(r"`(bench_\w+\.py)`", text):
            assert (ROOT / "benchmarks" / match.group(1)).exists(), \
                match.group(0)

    def test_example_references_exist(self):
        text = _read("EXPERIMENTS.md")
        for match in re.finditer(r"`examples/([\w.]+\.py)`", text):
            assert (ROOT / "examples" / match.group(1)).exists(), \
                match.group(0)

    def test_stated_constants_match_config(self):
        """EXPERIMENTS.md's calibration table quotes live config values."""
        from repro.config import gm_system

        gm = gm_system()
        text = _read("EXPERIMENTS.md")
        assert "45 / 5 µs" in text
        assert gm.gm.eager_isend_s == pytest.approx(45e-6)
        assert gm.gm.rndv_isend_s == pytest.approx(5e-6)
        assert "91 MB/s" in text
        assert gm.machine.nic.host_dma_bandwidth_Bps == pytest.approx(91e6)


class TestBenchCoverage:
    def test_one_bench_per_results_figure(self):
        benches = {p.name for p in (ROOT / "benchmarks").glob("bench_fig*.py")}
        for i in range(4, 18):
            assert any(b.startswith(f"bench_fig{i:02d}_") for b in benches), \
                f"no bench target for figure {i}"

    def test_every_ablation_in_design_exists(self):
        ablations = {p.name
                     for p in (ROOT / "benchmarks").glob("bench_ablation*.py")}
        assert len(ablations) >= 5
