"""Integration tests: the paper's headline claims, end to end.

Each test regenerates a reduced-resolution slice of a results figure and
asserts the claim the paper draws from it.  These are the repository's
acceptance tests; EXPERIMENTS.md records the full-resolution runs.
"""

import pytest

from repro.analysis import run_figure
from repro.config import gm_system, portals_system
from repro.core import CombSuite, PollingConfig, PwwConfig, run_polling, run_pww

KB = 1024


class TestBandwidthHierarchy:
    """§4 / Fig 8: GM ≈ 88 MB/s ≫ Portals ≈ 50 MB/s on identical hardware."""

    def test_plateaus(self):
        gm = run_polling(gm_system(), PollingConfig(
            msg_bytes=100 * KB, poll_interval_iters=1_000, measure_s=0.05,
        ))
        po = run_polling(portals_system(), PollingConfig(
            msg_bytes=100 * KB, poll_interval_iters=1_000, measure_s=0.05,
        ))
        assert 80 <= gm.bandwidth_MBps <= 95
        assert 40 <= po.bandwidth_MBps <= 60
        assert gm.bandwidth_MBps > 1.4 * po.bandwidth_MBps

    def test_availability_hierarchy_at_plateau(self):
        """Fig 14 vs 15: GM leaves the CPU to the application; Portals
        consumes it in interrupts and copies."""
        gm = run_polling(gm_system(), PollingConfig(
            msg_bytes=100 * KB, poll_interval_iters=10_000, measure_s=0.05,
        ))
        po = run_polling(portals_system(), PollingConfig(
            msg_bytes=100 * KB, poll_interval_iters=10_000, measure_s=0.05,
        ))
        assert gm.availability > 0.9
        assert po.availability < 0.5


class TestOffloadDetection:
    """§4.1: COMB's PWW method distinguishes application offload."""

    def test_verdicts(self):
        assert not CombSuite(gm_system()).offload_verdict().offloaded
        assert CombSuite(portals_system()).offload_verdict().offloaded


class TestKneeOrdering:
    """Figs 4–5: larger messages keep the pipeline busy to larger poll
    intervals — knees shift right with message size."""

    @staticmethod
    def _knee(system, msg_bytes):
        """Smallest tested interval at which bandwidth fell below half of
        the plateau."""
        plateau = run_polling(system, PollingConfig(
            msg_bytes=msg_bytes, poll_interval_iters=1_000, measure_s=0.04,
        )).bandwidth_Bps
        for interval in (3e5, 1e6, 3e6, 1e7, 3e7, 1e8):
            pt = run_polling(system, PollingConfig(
                msg_bytes=msg_bytes, poll_interval_iters=int(interval),
                measure_s=0.04,
            ))
            if pt.bandwidth_Bps < plateau / 2:
                return interval
        return float("inf")

    def test_knee_shifts_with_size(self):
        system = portals_system()
        small = self._knee(system, 10 * KB)
        large = self._knee(system, 300 * KB)
        assert small < large

    def test_knee_in_paper_ballpark(self):
        """100 KB knee in the 10^5–10^7 iteration range (paper: ~10^6)."""
        knee = self._knee(gm_system(), 100 * KB)
        assert 1e5 <= knee <= 1e7


class TestProgressRuleStory:
    """§4.3: the MPI_Test experiment (Fig 17) and the Progress Rule."""

    def test_single_test_recovers_gm_overlap(self):
        work = 3_000_000  # 12 ms: plenty to hide a 100 KB exchange
        plain = run_pww(gm_system(), PwwConfig(
            msg_bytes=100 * KB, work_interval_iters=work,
        ))
        tested = run_pww(gm_system(), PwwConfig(
            msg_bytes=100 * KB, work_interval_iters=work, tests_in_work=1,
        ))
        # The one call lets the transfer ride the work phase...
        assert tested.wait_s < 0.2 * plain.wait_s
        # ...so the same exchange now costs less wall time: bandwidth and
        # availability both rise (Fig 17's up-and-right shift).
        assert tested.bandwidth_Bps > plain.bandwidth_Bps
        assert tested.availability > plain.availability


class TestFigureClaimsQuick:
    """Claim checkers against coarse regenerated figures (the full set runs
    in benchmarks/)."""

    @pytest.mark.parametrize("fig_id", ["fig09", "fig10", "fig12"])
    def test_claims_hold(self, fig_id):
        rep = run_figure(fig_id, per_decade=1) if fig_id != "fig12" else \
            run_figure(fig_id, grid=(100_000, 300_000, 500_000))
        assert rep.ok, [f"{c.claim}: {c.detail}" for c in rep.claims if not c.ok]
