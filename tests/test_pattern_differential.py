"""Differential tests: the topology generalization must not move a bit.

The N-rank topology layer replaced the hard-coded two-node wiring, so
every pre-existing measurement taken through it is re-run here and pinned
bit-identical against (a) the default build path and (b) the recorded
golden values from the original two-node implementation.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import pytest

from repro.baselines import run_pingpong
from repro.core import PollingConfig
from repro.hardware.topology import Crossbar
from repro.patterns.fanin import run_fanin_polling

KB = 1024
GOLDEN = json.loads(
    (Path(__file__).parent / "golden_values.json").read_text()
)

FANIN_CFG = PollingConfig(msg_bytes=100 * KB, poll_interval_iters=1_000,
                          measure_s=0.02, warmup_s=0.004)


class TestPingpongDifferential:
    @pytest.mark.parametrize("preset", ["GM", "Portals"])
    def test_explicit_crossbar_is_bit_identical_to_default(self, preset):
        from repro.config import get_system

        system = get_system(preset)
        default = run_pingpong(system, 100 * KB)
        explicit = run_pingpong(system, 100 * KB, topology=Crossbar())
        assert explicit == default

    @pytest.mark.parametrize("preset", ["GM", "Portals"])
    def test_crossbar_pingpong_matches_golden(self, preset):
        from repro.config import get_system

        # repeats/warmup match the golden recording (see scripts/record).
        pt = run_pingpong(get_system(preset), 100 * KB, repeats=5,
                          warmup_msgs=1, topology=Crossbar())
        assert pt.latency_s == GOLDEN[f"{preset}.pingpong.100KB"]["latency_s"]


class TestFanInDifferential:
    @pytest.mark.parametrize("preset", ["GM", "Portals"])
    def test_shim_is_bit_identical_to_patterns_fanin(self, preset):
        from repro.config import get_system

        system = get_system(preset)
        ported = run_fanin_polling(system, FANIN_CFG, n_peers=3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.ext.multirank import run_fanin_polling as legacy

            shimmed = legacy(system, FANIN_CFG, n_peers=3)
        assert shimmed == ported

    def test_shim_warns_deprecation(self, gm):
        from repro.ext.multirank import run_fanin_polling as legacy

        with pytest.warns(DeprecationWarning, match="repro.patterns.fanin"):
            legacy(gm, FANIN_CFG, n_peers=2)

    def test_explicit_crossbar_matches_default(self, gm):
        default = run_fanin_polling(gm, FANIN_CFG, n_peers=3)
        explicit = run_fanin_polling(gm, FANIN_CFG, n_peers=3,
                                     topology=Crossbar())
        assert explicit == default

    def test_shim_reexports_point_type(self):
        import repro.patterns.fanin as fanin

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            import repro.ext.multirank as legacy
        assert legacy.FanInPoint is fanin.FanInPoint


class TestTwoRankPatternDifferential:
    def test_two_rank_halo_identical_across_topology_objects(self, gm):
        # A 2-rank halo on the default crossbar must match a fresh run:
        # the N-rank pattern path shares the burst fast-path arming logic
        # with the original two-node wiring, and any divergence between
        # builds would show up as a bitwise difference here.
        from repro.patterns import PatternConfig, run_pattern

        cfg = PatternConfig(pattern="halo2d", ranks=2, msg_bytes=100 * KB,
                            work_interval_iters=100_000, iterations=4,
                            warmup_iterations=1)
        assert run_pattern(gm, cfg) == run_pattern(gm, cfg)
