"""Tests: figure generation, claims, ASCII plots, export, report."""

import json

import pytest

from repro.analysis import (
    ALL_CLAIMS,
    ALL_FIGURES,
    Curve,
    FigureData,
    export_figures,
    render,
    run_figure,
    write_csv,
    write_json,
)
from repro.analysis.claims import (
    check_fig08,
    check_fig11,
    check_fig13,
)


def synthetic_fig(fig_id="fig08", curves=None):
    return FigureData(
        fig_id=fig_id,
        title="t",
        xlabel="x",
        ylabel="y",
        curves=curves or [
            Curve("GM", [1, 10, 100], [88, 88, 40]),
            Curve("Portals", [1, 10, 100], [50, 50, 20]),
        ],
    )


class TestFigureData:
    def test_curve_lookup(self):
        fig = synthetic_fig()
        assert fig.curve("GM").y[0] == 88
        with pytest.raises(KeyError):
            fig.curve("nope")

    def test_to_dict_roundtrips_json(self):
        fig = synthetic_fig()
        blob = json.dumps(fig.to_dict())
        back = json.loads(blob)
        assert back["fig_id"] == "fig08"
        assert back["curves"][0]["label"] == "GM"

    def test_registry_complete(self):
        expected = {f"fig{i:02d}" for i in range(4, 18)}
        assert set(ALL_FIGURES) == expected
        assert set(ALL_CLAIMS) == expected


class TestClaimCheckers:
    def test_fig08_passes_on_paper_shape(self):
        results = check_fig08(synthetic_fig())
        assert all(c.ok for c in results)

    def test_fig08_fails_when_portals_wins(self):
        fig = synthetic_fig(curves=[
            Curve("GM", [1, 10], [50, 50]),
            Curve("Portals", [1, 10], [88, 88]),
        ])
        assert not all(c.ok for c in check_fig08(fig))

    def test_fig11_detects_offload_signature(self):
        good = synthetic_fig("fig11", curves=[
            Curve("GM", [1e4, 1e7], [2300, 2300]),
            Curve("Portals", [1e4, 1e7], [3800, 10]),
        ])
        assert all(c.ok for c in check_fig11(good))
        bad = synthetic_fig("fig11", curves=[
            Curve("GM", [1e4, 1e7], [2300, 50]),      # GM drains?!
            Curve("Portals", [1e4, 1e7], [3800, 900]),
        ])
        assert not all(c.ok for c in check_fig11(bad))

    def test_fig13_gap_detection(self):
        flat = synthetic_fig("fig13", curves=[
            Curve("Work with MH", [1, 2], [100, 200]),
            Curve("Work Only", [1, 2], [100, 200]),
        ])
        assert all(c.ok for c in check_fig13(flat))
        gapped = synthetic_fig("fig13", curves=[
            Curve("Work with MH", [1, 2], [900, 1000]),
            Curve("Work Only", [1, 2], [100, 200]),
        ])
        assert not all(c.ok for c in check_fig13(gapped))


class TestAsciiPlot:
    def test_renders_title_axes_legend(self):
        out = render(synthetic_fig())
        assert "fig08" in out
        assert "o GM" in out and "x Portals" in out
        assert "[y]" in out

    def test_log_scale_labels(self):
        fig = synthetic_fig()
        fig.xscale = "log"
        out = render(fig)
        assert "1e" in out

    def test_empty_data_handled(self):
        fig = synthetic_fig(curves=[Curve("e", [], [])])
        assert "no finite data" in render(fig)

    def test_constant_curve_handled(self):
        fig = synthetic_fig(curves=[Curve("c", [1, 2], [5, 5])])
        fig.xscale = "linear"
        assert "c" in render(fig)


class TestExport:
    def test_csv_layout(self, tmp_path):
        path = write_csv(synthetic_fig(), tmp_path / "f.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "curve,x,y"
        assert len(lines) == 1 + 6  # header + 2 curves x 3 points

    def test_json_roundtrip(self, tmp_path):
        path = write_json(synthetic_fig(), tmp_path / "f.json")
        data = json.loads(path.read_text())
        assert data["fig_id"] == "fig08"

    def test_export_directory(self, tmp_path):
        figs = [synthetic_fig("fig08"), synthetic_fig("fig11")]
        written = export_figures(figs, tmp_path / "out")
        assert len(written) == 6  # csv + json + svg per figure
        assert (tmp_path / "out" / "fig11.csv").exists()
        assert (tmp_path / "out" / "fig11.svg").exists()


class TestRunFigure:
    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError):
            run_figure("fig99")

    def test_quick_regeneration_with_claims(self):
        # The fastest figure pair: PWW overhead on a tiny linear grid.
        rep = run_figure("fig13", grid=(100_000, 400_000))
        assert rep.figure.fig_id == "fig13"
        assert rep.ok, [c.detail for c in rep.claims]
