"""Tests: ping-pong, netperf and White & Bova baselines."""

import pytest

from repro.baselines import (
    classify_overlap,
    classify_sizes,
    run_netperf,
    run_pingpong,
)

KB = 1024


class TestPingPong:
    def test_latency_positive_and_ordered(self, gm):
        small = run_pingpong(gm, 0, repeats=5, warmup_msgs=1)
        large = run_pingpong(gm, 100 * KB, repeats=5, warmup_msgs=1)
        assert 0 < small.latency_s < large.latency_s

    def test_bandwidth_grows_with_size(self, either_system):
        mid = run_pingpong(either_system, 10 * KB, repeats=5, warmup_msgs=1)
        big = run_pingpong(either_system, 300 * KB, repeats=5, warmup_msgs=1)
        assert big.bandwidth_MBps > mid.bandwidth_MBps

    def test_gm_beats_portals_on_latency(self, gm, portals):
        g = run_pingpong(gm, 100 * KB, repeats=5, warmup_msgs=1)
        p = run_pingpong(portals, 100 * KB, repeats=5, warmup_msgs=1)
        assert g.latency_s < p.latency_s

    def test_validation(self, gm):
        with pytest.raises(ValueError):
            run_pingpong(gm, 1024, repeats=0)

    def test_zero_byte_bandwidth_is_zero(self, gm):
        r = run_pingpong(gm, 0, repeats=3, warmup_msgs=1)
        assert r.bandwidth_Bps == 0.0


class TestNetperf:
    def test_validation(self, gm):
        with pytest.raises(ValueError):
            run_netperf(gm, wait_mode="nonsense")

    def test_gm_blocking_breaks_entirely(self, gm):
        """§5: select-style waiting + library-polled progress = no traffic,
        availability 1.0 — the netperf approach is meaningless here."""
        r = run_netperf(gm, wait_mode="blocking")
        assert r.availability == pytest.approx(1.0, abs=0.01)
        assert r.bandwidth_MBps < 1.0

    def test_gm_busywait_reports_half(self, gm):
        """§5: the spinning MPI process soaks its timeslice, so netperf
        reads ~50% although GM's true overhead is near zero."""
        r = run_netperf(gm, wait_mode="busywait")
        assert r.availability == pytest.approx(0.5, abs=0.05)
        assert r.bandwidth_MBps > 10

    def test_kernel_stack_blocking_shows_true_overhead(self, tcp):
        r = run_netperf(tcp, wait_mode="blocking")
        assert 0.1 < r.availability < 0.8
        assert r.bandwidth_MBps > 10

    def test_busywait_never_higher_than_blocking(self, tcp):
        block = run_netperf(tcp, wait_mode="blocking")
        spin = run_netperf(tcp, wait_mode="busywait")
        assert spin.availability <= block.availability + 0.02

    def test_result_fields(self, portals):
        r = run_netperf(portals, msg_bytes=50 * KB, wait_mode="blocking")
        assert r.msg_bytes == 50 * KB
        assert r.dry_s > 0 and r.loaded_s >= r.dry_s


class TestWhiteBova:
    def test_gm_large_serializes(self, gm):
        c = classify_overlap(gm, 100 * KB)
        assert not c.overlaps
        assert c.overlap_fraction < 0.3

    def test_offload_nic_overlaps(self):
        from repro.ext import offload_nic_system

        c = classify_overlap(offload_nic_system(), 100 * KB)
        assert c.overlaps
        assert c.overlap_fraction > 0.7

    def test_classify_sizes_batch(self, gm):
        results = classify_sizes(gm, [10 * KB, 100 * KB])
        assert len(results) == 2
        assert results[0].msg_bytes == 10 * KB

    def test_fields_consistent(self, portals):
        c = classify_overlap(portals, 50 * KB)
        assert c.t_comm_s > 0 and c.t_work_s > 0 and c.t_both_s > 0
        # Both together can never be faster than the slower alone.
        assert c.t_both_s >= max(c.t_comm_s, c.t_work_s) * 0.95
