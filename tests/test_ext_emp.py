"""Tests: the EMP-like Gigabit Ethernet offload system (ext)."""

import pytest

from repro.core import CombSuite, PollingConfig, PwwConfig, run_polling, run_pww
from repro.ext import emp_system

KB = 1024

FAST = dict(measure_s=0.03, warmup_s=0.005)


class TestEmpCharacter:
    def test_offloaded_without_interrupts(self):
        """EMP's defining combination: NIC-driven progress, zero host
        interrupts."""
        system = emp_system()
        verdict = CombSuite(system).offload_verdict()
        assert verdict.offloaded
        assert abs(verdict.overhead_long_s) < 5e-5
        pt = run_polling(system, PollingConfig(
            msg_bytes=100 * KB, poll_interval_iters=1_000, **FAST,
        ))
        assert pt.interrupts == 0

    def test_gigabit_class_bandwidth(self):
        """~80+ MB/s through 1500-byte frames (the published EMP range)."""
        pt = run_polling(emp_system(), PollingConfig(
            msg_bytes=100 * KB, poll_interval_iters=1_000, **FAST,
        ))
        assert 70 <= pt.bandwidth_MBps <= 92
        assert pt.availability > 0.85

    def test_small_frames_many_packets(self):
        """1500-byte MTU: a 100 KB message is ~69 frames, not 25."""
        from repro.mpi import build_world

        world = build_world(emp_system())
        engine = world.engine
        h0 = world.endpoint(0).bind(world.cluster[0].new_context("a"))
        h1 = world.endpoint(1).bind(world.cluster[1].new_context("b"))

        def rank0():
            yield from h0.recv(1, 100 * KB, tag=1)

        def rank1():
            yield from h1.send(0, 100 * KB, tag=1)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert world.cluster[0].nic.rx_packets >= 69

    def test_cheap_user_level_posts(self):
        pt = run_pww(emp_system(), PwwConfig(
            msg_bytes=100 * KB, work_interval_iters=100_000,
            batches=4, warmup_batches=1,
        ))
        # Descriptor writes, not kernel traps.
        assert pt.post_s < 20e-6

    def test_comparison_row(self):
        """In the cross-system table EMP reads: offloaded, low latency,
        near-GM bandwidth."""
        from repro.analysis.tables import summarize_system
        from repro.config import gm_system

        emp = summarize_system(emp_system())
        gm = summarize_system(gm_system())
        assert emp.offloaded and not gm.offloaded
        assert emp.latency0_s < gm.latency0_s
        assert emp.peak_bandwidth_Bps > 0.8 * gm.peak_bandwidth_Bps
