"""Application communication patterns: config, runner, wiring."""

from __future__ import annotations

import json

import pytest

from repro.core import PointCache, PointTask, SweepExecutor
from repro.core.executor import task_key
from repro.mpi.collectives import allreduce_msgs, allreduce_rd_msgs
from repro.patterns import (
    PatternConfig,
    PatternPoint,
    balanced_grid,
    grid_neighbors,
    halo_pairs,
    run_pattern,
)
from repro.patterns.allreduce import expected_allreduce_msgs
from repro.patterns.config import validate_config
from repro.patterns.halo import HaloPlan
from repro.patterns.sweep import SweepPlan

KB = 1024

#: Small-but-real measurement shape shared by the runner tests.
FAST = dict(msg_bytes=20 * KB, work_interval_iters=20_000,
            iterations=3, warmup_iterations=1)


class TestConfig:
    def test_defaults_validate(self):
        validate_config(PatternConfig())

    @pytest.mark.parametrize("bad", [
        dict(pattern="ring"),
        dict(ranks=1),
        dict(msg_bytes=0),
        dict(work_interval_iters=-1),
        dict(iterations=0),
        dict(warmup_iterations=-1),
        dict(ghost_width=0),
        dict(algorithm="ring"),
        dict(ranks=4, grid=(3, 2)),
    ])
    def test_invalid_rejected(self, bad):
        with pytest.raises(ValueError):
            validate_config(PatternConfig(**bad))

    def test_balanced_grid_products(self):
        assert balanced_grid(4, 2) == (2, 2)
        assert balanced_grid(6, 2) == (3, 2)
        assert balanced_grid(8, 3) == (2, 2, 2)
        assert balanced_grid(12, 3) == (3, 2, 2)
        assert balanced_grid(7, 2) == (7, 1)

    def test_halo_pairs_counts(self):
        assert halo_pairs((2, 2)) == 4
        assert halo_pairs((3, 1)) == 2
        assert halo_pairs((2, 2, 2)) == 12

    def test_grid_neighbors_interior(self):
        # 3x3: center rank 4 touches all four sides.
        assert grid_neighbors(4, (3, 3)) == [1, 3, 5, 7]
        # Corner rank 0 touches two.
        assert grid_neighbors(0, (3, 3)) == [1, 3]


class TestPlans:
    def test_halo_ghost_width_scales_payload(self):
        one = HaloPlan(PatternConfig(ranks=4, ghost_width=1), 0)
        three = HaloPlan(PatternConfig(ranks=4, ghost_width=3), 0)
        assert three.nbytes == 3 * one.nbytes

    def test_halo3d_uses_three_dims(self):
        plan = HaloPlan(PatternConfig(pattern="halo3d", ranks=8), 0)
        assert plan.shape == (2, 2, 2)
        assert len(plan.neighbors) == 3  # corner of the cube

    def test_sweep_corner_ranks(self):
        cfg = PatternConfig(pattern="sweep", ranks=4)
        origin = SweepPlan(cfg, 0)
        assert origin.upstream == []
        assert sorted(origin.downstream) == [1, 2]
        sink = SweepPlan(cfg, 3)
        assert sorted(sink.upstream) == [1, 2]
        assert sink.downstream == []


class TestRunner:
    @pytest.mark.parametrize("pattern", ["halo2d", "halo3d", "sweep",
                                         "allreduce"])
    def test_runs_and_reports_per_rank(self, gm, pattern):
        ranks = 8 if pattern == "halo3d" else 4
        pt = run_pattern(gm, PatternConfig(pattern=pattern, ranks=ranks,
                                           **FAST))
        assert pt.ranks == ranks
        assert len(pt.availability_per_rank) == ranks
        assert len(pt.elapsed_per_rank) == ranks
        assert all(0.0 < a <= 1.0 for a in pt.availability_per_rank)
        assert pt.availability_min <= pt.availability <= pt.availability_max
        assert pt.elapsed_s == max(pt.elapsed_per_rank)

    def test_halo_message_oracle(self, gm):
        cfg = PatternConfig(pattern="halo2d", ranks=6, **FAST)
        pt = run_pattern(gm, cfg)
        shape = balanced_grid(6, 2)
        assert pt.msgs == cfg.iterations * 2 * halo_pairs(shape)

    @pytest.mark.parametrize("algorithm,analytic", [
        ("binomial", allreduce_msgs),
        ("rd", allreduce_rd_msgs),
    ])
    def test_allreduce_message_oracle(self, gm, algorithm, analytic):
        for ranks in (2, 3, 6):
            cfg = PatternConfig(pattern="allreduce", ranks=ranks,
                                algorithm=algorithm, **FAST)
            pt = run_pattern(gm, cfg)
            assert pt.msgs == cfg.iterations * analytic(ranks), ranks
            assert pt.algorithm == algorithm
            assert expected_allreduce_msgs(algorithm, ranks) == analytic(ranks)

    def test_deterministic(self, either_system):
        cfg = PatternConfig(pattern="halo2d", ranks=4, **FAST)
        assert run_pattern(either_system, cfg) == \
            run_pattern(either_system, cfg)

    def test_fattree_runs(self, gm):
        cfg = PatternConfig(pattern="halo2d", ranks=6, topology="fattree",
                            **FAST)
        pt = run_pattern(gm, cfg)
        assert pt.topology == "fattree"
        assert all(0.0 < a <= 1.0 for a in pt.availability_per_rank)

    def test_crossbar_widens_past_port_count(self, gm):
        # 16 ranks exceed the paper's 8-port switch; the runner models an
        # idealized wider single-stage fabric instead of refusing.
        cfg = PatternConfig(pattern="allreduce", ranks=16, **FAST)
        pt = run_pattern(gm, cfg)
        assert pt.ranks == 16

    def test_explicit_grid_honored(self, gm):
        cfg = PatternConfig(pattern="halo2d", ranks=6, grid=(6, 1), **FAST)
        pt = run_pattern(gm, cfg)
        assert pt.msgs == cfg.iterations * 2 * halo_pairs((6, 1))


class TestExecutorIntegration:
    def _task(self, gm):
        return PointTask("pattern", gm,
                         PatternConfig(pattern="halo2d", ranks=4, **FAST))

    def test_cache_roundtrip_bit_identical(self, gm, tmp_path):
        task = self._task(gm)
        with SweepExecutor(jobs=1, cache=tmp_path) as ex:
            fresh = ex.run_one(task)
        with SweepExecutor(jobs=1, cache=tmp_path) as ex2:
            cached = ex2.run_one(task)
            assert ex2.stats.hits == 1
        assert cached == fresh
        assert isinstance(cached, PatternPoint)

    def test_cache_key_distinguishes_topology_and_ranks(self, gm):
        base = PatternConfig(pattern="halo2d", ranks=4, **FAST)
        keys = {
            task_key(PointTask("pattern", gm, cfg))
            for cfg in (
                base,
                PatternConfig(pattern="halo2d", ranks=8, **FAST),
                PatternConfig(pattern="halo2d", ranks=4,
                              topology="fattree", **FAST),
            )
        }
        assert len(keys) == 3

    def test_checked_equals_bare(self, gm):
        task = self._task(gm)
        bare = SweepExecutor(jobs=1).run_one(task)
        with SweepExecutor(jobs=1, check=True) as ex:
            checked = ex.run_one(task)
            assert ex.violations == []
        assert checked == bare

    def test_cache_record_kind(self, gm, tmp_path):
        task = self._task(gm)
        cache = PointCache(tmp_path)
        with SweepExecutor(jobs=1, cache=cache) as ex:
            ex.run_one(task)
        rec = next(tmp_path.rglob("*.json"))
        assert json.loads(rec.read_text())["kind"] == "pattern"


class TestScenario:
    def test_pattern_experiment(self, tmp_path):
        from repro.scenario import format_scenario_results, run_scenario

        spec = {
            "name": "pattern-smoke",
            "systems": [{"preset": "GM"}],
            "experiments": [{
                "kind": "pattern", "pattern": "allreduce",
                "rank_counts": [2, 4], "msg_kb": 20,
                "config": {"work_interval_iters": 20_000,
                           "iterations": 2, "warmup_iterations": 1},
            }],
        }
        results = run_scenario(spec)
        points = results["systems"][0]["experiments"][0]["points"]
        assert [p["ranks"] for p in points] == [2, 4]
        text = format_scenario_results(results)
        assert "allreduce" in text and "avail=" in text

    def test_unknown_pattern_kind_rejected(self):
        from repro.scenario import ScenarioError, run_scenario

        spec = {"name": "x", "systems": [{"preset": "GM"}],
                "experiments": [{"kind": "pattern", "pattern": "ring",
                                 "rank_counts": [2]}]}
        with pytest.raises(ValueError):
            run_scenario(spec)


class TestCli:
    def test_pattern_subcommand(self, capsys):
        from repro.cli import main

        rc = main(["pattern", "halo", "--ranks", "4", "--size", "20",
                   "--interval", "20000", "--iterations", "2",
                   "--warmup", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "halo2d, 4 ranks on crossbar" in out
        assert "per-rank availability" in out

    def test_pattern_subcommand_checked_fattree(self, capsys):
        from repro.cli import main

        rc = main(["pattern", "allreduce", "--ranks", "6",
                   "--topology", "fattree", "--algorithm", "rd",
                   "--size", "20", "--interval", "20000",
                   "--iterations", "2", "--warmup", "1", "--check"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "[rd]" in out
        assert "all invariants held" in out

    def test_trace_pattern_with_attribution(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["trace", "halo", "--ranks", "4", "--size", "20",
                   "--interval", "20000", "--out", str(tmp_path),
                   "--attribution"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "pattern" in out  # the attribution table row
        doc = json.loads((tmp_path / "halo.attribution.json").read_text())
        assert doc["points"][0]["method"] == "pattern"
        assert doc["points"][0]["windows"] > 0


class TestScalingFigures:
    def test_run_figure_scale(self, monkeypatch):
        from repro.analysis import run_figure

        rep = run_figure("scale_halo", rank_counts=(2, 4),
                         msg_bytes=20 * KB, work_interval_iters=200_000)
        assert len(rep.figure.curves) == 4
        assert all(len(c.y) == 2 for c in rep.figure.curves)
        # Validity claims must hold even on the tiny grid.
        for c in rep.claims:
            if "valid fraction" in c.claim:
                assert c.ok, c.detail

    def test_unknown_figure_lists_scaling_ids(self):
        from repro.analysis import run_figure

        with pytest.raises(KeyError, match="scale_halo"):
            run_figure("fig99")
