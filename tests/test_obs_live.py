"""Tests: live sweep telemetry (stream schema, channel, hub, ``top``).

The telemetry contract under test, in order of importance:

1. **Honest loss** — a saturated queue drops events but *counts* them,
   per kind per process, and later lifecycle events carry the counts.
2. **Crash visibility** — a worker killed mid-point surfaces as a
   heartbeat-loss stall naming the lost pid, and the run still
   completes with a final report.
3. **Bit-identity** — attaching a channel never changes simulated
   results, serial or pooled.
"""

import io
import json
import multiprocessing
import os
import time

import pytest

from repro.config import gm_system
from repro.core import PointTask, PollingConfig, SweepExecutor
from repro.obs import chrome_trace
from repro.obs.context import use_observer
from repro.obs.export import EXECUTOR_PID
from repro.obs.live import (
    TELEMETRY_SCHEMA_VERSION,
    TelemetryChannel,
    arm_worker,
    attach_engine_probe,
    disarm_worker,
    make_event,
    note_point_end,
    note_point_start,
    pool_worker_init,
    validate_stream_event,
    validate_stream_line,
    worker_armed,
)
from repro.obs.live_consumers import (
    CostModel,
    ProgressRenderer,
    StreamWriter,
    SweepState,
    TelemetryHub,
    load_stream_state,
    render_top,
    run_top,
)
from repro.obs.observer import Observer

KB = 1024

#: Fast-but-real polling points (distinct intervals → distinct keys).
TASKS = [
    PointTask("polling", gm_system(), PollingConfig(
        msg_bytes=10 * KB, poll_interval_iters=interval,
        measure_s=0.002, warmup_s=0.0005, min_cycles=2,
    ))
    for interval in (1_000, 10_000, 100_000)
]


@pytest.fixture(autouse=True)
def _disarmed():
    """Never leak an armed parent emitter into another test."""
    disarm_worker()
    yield
    disarm_worker()


def _point_start_fields():
    return {"system": "GM", "msg_bytes": 10 * KB, "interval_iters": 1_000}


def _drain_all(channel, timeout_s=2.0):
    """Every event currently reachable in the queue (feeder-thread safe)."""
    events = []
    deadline_s = time.time() + timeout_s
    while time.time() < deadline_s:
        doc = channel.drain(timeout_s=0.05)
        if doc is None:
            break
        events.append(doc)
    return events


# ------------------------------------------------------------- stream schema
class TestStreamSchema:
    def test_all_emitted_kinds_validate(self):
        samples = {
            "run_start": dict(run_id="r", cmd="figures", jobs=2),
            "figure_start": dict(figure="fig04"),
            "figure_end": dict(figure="fig04", wall_s=1.0),
            "batch": dict(n_tasks=4, n_hits=1, n_pending=3),
            "point_cached": dict(key="k", method="polling", system="GM",
                                 outcome="hit"),
            "point_start": dict(key="k", method="polling", system="GM",
                                msg_bytes=1024, interval_iters=10),
            "point_end": dict(key="k", method="polling", wall_s=0.1,
                              dropped={}),
            "heartbeat": dict(sim_now_s=0.5, events_processed=10,
                              points_done=1, current_key=None, dropped={}),
            "stall": dict(key="k", elapsed_s=9.0, predicted_s=1.0,
                          factor=9.0),
            "progress": dict(done=1, cached=2, running=1, eta_s=4.0),
            "run_end": dict(wall_s=3.0, done=4, cached=2, stalls=0,
                            dropped={}),
        }
        for kind, fields in samples.items():
            doc = make_event(kind, **fields)
            assert validate_stream_event(doc) == [], kind
            assert doc["v"] == TELEMETRY_SCHEMA_VERSION
            assert doc["pid"] == os.getpid()

    def test_missing_declared_field_rejected(self):
        doc = make_event("point_end", key="k", method="polling", wall_s=0.1)
        assert any("dropped" in e for e in validate_stream_event(doc))

    def test_unknown_kind_rejected(self):
        doc = make_event("telepathy")
        assert any("unknown event kind" in e for e in
                   validate_stream_event(doc))

    def test_wrong_version_rejected(self):
        doc = make_event("figure_start", figure="fig04")
        doc["v"] = TELEMETRY_SCHEMA_VERSION + 1
        assert any("schema version" in e for e in validate_stream_event(doc))

    def test_non_numeric_numeric_field_rejected(self):
        doc = make_event("figure_end", figure="fig04", wall_s="fast")
        assert any("not a number" in e for e in validate_stream_event(doc))

    def test_dropped_must_be_object(self):
        doc = make_event("point_end", key="k", method="polling", wall_s=0.1,
                         dropped=3)
        assert any("'dropped'" in e for e in validate_stream_event(doc))

    def test_unknown_extra_fields_are_legal(self):
        doc = make_event("figure_start", figure="fig04",
                         future_field="anything")
        assert validate_stream_event(doc) == []

    def test_line_validator_flags_garbage(self):
        assert validate_stream_line("{ not json") != []
        good = json.dumps(make_event("figure_start", figure="fig04"))
        assert validate_stream_line(good) == []


# ------------------------------------------------------------------ channel
class TestTelemetryChannel:
    def test_emit_drain_round_trip(self):
        channel = TelemetryChannel(capacity=8)
        try:
            assert channel.emit("figure_start", figure="fig04")
            doc = channel.drain(timeout_s=2.0)
            assert doc is not None and doc["kind"] == "figure_start"
            assert validate_stream_event(doc) == []
        finally:
            channel.close()

    def test_saturation_drops_are_counted_per_kind(self):
        channel = TelemetryChannel(capacity=2)
        try:
            delivered = sum(
                channel.emit_nowait("heartbeat", sim_now_s=0.0,
                                    events_processed=0, points_done=0,
                                    current_key=None, dropped={})
                for _ in range(6)
            )
            assert delivered == 2
            assert channel.dropped == {"heartbeat": 4}
            # Drops free no capacity retroactively: both survivors drain.
            assert len(_drain_all(channel)) == 2
        finally:
            channel.close()

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TelemetryChannel(capacity=0)


# -------------------------------------------------------------- worker side
class TestWorkerEmitter:
    def test_unarmed_notes_are_no_ops(self):
        assert not worker_armed()
        note_point_start("k", "polling", _point_start_fields())
        note_point_end("k", "polling", 0.1)  # must not raise

    def test_lifecycle_events_flow(self):
        channel = TelemetryChannel(capacity=16)
        try:
            arm_worker(channel.queue, heartbeat_s=0)  # no heartbeat thread
            note_point_start("k1", "polling", _point_start_fields())
            note_point_end("k1", "polling", 0.25)
            events = _drain_all(channel)
            assert [e["kind"] for e in events] == ["point_start", "point_end"]
            start, end = events
            assert start["key"] == "k1" and start["system"] == "GM"
            assert end["wall_s"] == 0.25 and end["points_done"] == 1
            assert end["dropped"] == {}
            for doc in events:
                assert validate_stream_event(doc) == []
        finally:
            disarm_worker()
            channel.close()

    def test_saturated_queue_drops_reported_in_next_point_end(self):
        channel = TelemetryChannel(capacity=1)
        try:
            arm_worker(channel.queue, heartbeat_s=0)
            note_point_start("k1", "polling", _point_start_fields())
            # Queue full: this point_end blocks briefly, then drops.
            note_point_end("k1", "polling", 0.1)
            assert _drain_all(channel)[0]["kind"] == "point_start"
            # The next delivered lifecycle event confesses the loss.
            note_point_start("k2", "polling", _point_start_fields())
            _drain_all(channel)
            note_point_end("k2", "polling", 0.1)
            end = _drain_all(channel)[0]
            assert end["kind"] == "point_end"
            assert end["dropped"] == {"point_end": 1}
            assert end["points_done"] == 2
        finally:
            disarm_worker()
            channel.close()

    def test_heartbeats_sample_the_probed_engine(self):
        class FakeEngine:
            now = 0.125
            events_processed = 4242

        channel = TelemetryChannel(capacity=64)
        try:
            arm_worker(channel.queue, heartbeat_s=0.02)
            attach_engine_probe(FakeEngine())
            note_point_start("k1", "polling", _point_start_fields())
            time.sleep(0.15)
            disarm_worker()
            beats = [e for e in _drain_all(channel)
                     if e["kind"] == "heartbeat"]
            assert beats, "no heartbeats in 0.15s at 0.02s period"
            probed = [b for b in beats if b["sim_now_s"] is not None]
            assert probed, "no heartbeat sampled the attached engine"
            assert probed[-1]["sim_now_s"] == pytest.approx(0.125)
            assert probed[-1]["events_processed"] == 4242
            assert probed[-1]["current_key"] == "k1"
            for doc in beats:
                assert validate_stream_event(doc) == []
        finally:
            disarm_worker()
            channel.close()

    def test_probe_is_a_no_op_unarmed(self):
        attach_engine_probe(object())  # must not raise, must not arm
        assert not worker_armed()


# ---------------------------------------------------------------- cost model
class TestCostModel:
    def test_per_method_mean_with_global_fallback(self):
        model = CostModel()
        assert model.predicted_s("polling") is None
        model.observe("polling", 1.0)
        model.observe("polling", 3.0)
        assert model.predicted_s("polling") == pytest.approx(2.0)
        # Unknown method falls back to the global mean.
        assert model.predicted_s("pww") == pytest.approx(2.0)

    def test_eta_scales_with_lanes(self):
        model = CostModel()
        model.observe("polling", 2.0)
        assert model.eta_s(4, jobs=1) == pytest.approx(8.0)
        assert model.eta_s(4, jobs=4) == pytest.approx(2.0)
        assert model.eta_s(0, jobs=1) == 0.0
        assert CostModel().eta_s(4, jobs=1) is None


# -------------------------------------------------------------- state folding
class TestSweepState:
    def test_fold_full_lifecycle(self):
        state = SweepState()
        for doc in [
            make_event("run_start", run_id="r1", cmd="figures", jobs=2),
            make_event("batch", n_tasks=3, n_hits=1, n_pending=2),
            make_event("point_cached", key="kc", method="polling",
                       system="GM", outcome="hit"),
            make_event("point_start", key="k1", method="polling",
                       system="GM", msg_bytes=1, interval_iters=1),
            make_event("heartbeat", sim_now_s=0.5, events_processed=7,
                       points_done=0, current_key="k1",
                       dropped={"heartbeat": 2}),
            make_event("point_end", key="k1", method="polling", wall_s=0.1,
                       points_done=1, dropped={"heartbeat": 3}),
            make_event("run_end", wall_s=1.0, done=1, cached=1, stalls=0,
                       dropped={"progress": 1, "heartbeat": 3}),
        ]:
            state.apply(doc)
        assert (state.run_id, state.cmd, state.jobs) == ("r1", "figures", 2)
        assert (state.tasks, state.cached, state.done) == (3, 1, 1)
        assert state.pending == 1
        assert state.finished and state.wall_s == pytest.approx(1.0)
        worker = state.workers[os.getpid()]
        assert worker.points_done == 1 and worker.current_key is None
        # Latest per-pid drop snapshot wins (cumulative counts).
        assert state.worker_dropped[os.getpid()] == {"heartbeat": 3}

    def test_total_dropped_merges_parent_and_workers(self):
        state = SweepState()
        state.parent_dropped = {"heartbeat": 2}
        state.worker_dropped = {10: {"heartbeat": 1, "point_end": 1},
                                11: {"heartbeat": 4}}
        assert state.total_dropped() == {"heartbeat": 7, "point_end": 1}


# ----------------------------------------------------------- stall detection
def _stamped(kind, t_wall_s, pid=9999, **fields):
    doc = make_event(kind, **fields)
    doc["t_wall_s"] = t_wall_s
    doc["pid"] = pid
    return doc


class TestHubStallDetection:
    """Deterministic stall logic via an injected clock (no sleeping)."""

    def _hub(self, fake_now, heartbeat_s=0.5):
        channel = TelemetryChannel(capacity=8, heartbeat_s=heartbeat_s)
        hub = TelemetryHub(channel, consumers=[], stall_floor_s=1.0,
                           clock=lambda: fake_now[0])
        return channel, hub

    def test_slow_point_flagged_once_against_prediction(self):
        fake_now = [100.0]
        channel, hub = self._hub(fake_now)
        try:
            hub._handle(_stamped("point_end", 100.0, key="k0",
                                 method="polling", wall_s=1.0, dropped={}))
            hub._handle(_stamped("point_start", 100.0, key="k1",
                                 method="polling", system="GM",
                                 msg_bytes=1, interval_iters=1))
            fake_now[0] = 109.0  # 9s elapsed > 8 × 1.0s predicted
            # A fresh heartbeat keeps the worker alive: slow, not lost.
            hub._handle(_stamped("heartbeat", 108.9, sim_now_s=0.1,
                                 events_processed=1, points_done=1,
                                 current_key="k1", dropped={}))
            hub._check_stalls()
            hub._check_stalls()  # flagged once, not per check
            assert len(hub.state.stalls) == 1
            stall = hub.state.stalls[0]
            assert stall["key"] == "k1"
            assert stall["factor"] == pytest.approx(9.0)
            assert "lost_pid" not in stall
            assert hub.state.running["k1"].stalled
        finally:
            channel.close()

    def test_below_floor_never_flagged(self):
        fake_now = [100.0]
        channel, hub = self._hub(fake_now)
        try:
            hub._handle(_stamped("point_end", 100.0, key="k0",
                                 method="polling", wall_s=0.01, dropped={}))
            hub._handle(_stamped("point_start", 100.0, key="k1",
                                 method="polling", system="GM",
                                 msg_bytes=1, interval_iters=1))
            fake_now[0] = 100.5  # 50× predicted but under the 1s floor
            hub._handle(_stamped("heartbeat", 100.5, sim_now_s=0.1,
                                 events_processed=1, points_done=1,
                                 current_key="k1", dropped={}))
            hub._check_stalls()
            assert hub.state.stalls == []
        finally:
            channel.close()

    def test_silent_worker_flagged_as_lost(self):
        fake_now = [100.0]
        channel, hub = self._hub(fake_now)  # loss after max(6×0.5, 1) = 3s
        try:
            hub._handle(_stamped("point_start", 100.0, pid=4242, key="k1",
                                 method="polling", system="GM",
                                 msg_bytes=1, interval_iters=1))
            fake_now[0] = 104.0  # 4s of silence, no prediction at all
            hub._check_stalls()
            assert len(hub.state.stalls) == 1
            stall = hub.state.stalls[0]
            assert stall["lost_pid"] == 4242
            assert stall["silent_s"] == pytest.approx(4.0)
            assert hub.state.workers[4242].lost
        finally:
            channel.close()


# -------------------------------------------------- killed worker, live hub
def _doomed_worker(out_queue):
    """Arms itself, announces a point, then dies without a point_end."""
    pool_worker_init(out_queue, 0.05)
    note_point_start("deadpoint", "polling",
                     {"system": "GM", "msg_bytes": 1, "interval_iters": 1})
    time.sleep(0.3)  # let the feeder thread flush, heartbeats flow
    os._exit(1)      # simulated crash: no point_end, no disarm


class TestKilledWorker:
    def test_lost_worker_stalls_and_run_completes(self):
        seen = []
        channel = TelemetryChannel(capacity=64, heartbeat_s=0.05)
        hub = TelemetryHub(channel, consumers=[seen.append],
                           stall_floor_s=0.2, progress_period_s=0.1)
        hub.start("run1", "test", jobs=1)
        ctx = multiprocessing.get_context("spawn")
        proc = ctx.Process(target=_doomed_worker, args=(channel.queue,))
        proc.start()
        proc.join(timeout=30)
        assert not proc.is_alive()
        deadline_s = time.time() + 10
        while time.time() < deadline_s and not hub.state.stalls:
            time.sleep(0.05)
        hub.close()  # the run must complete despite the dead worker
        stalls = hub.state.stalls
        assert stalls, "dead worker never flagged as a stall"
        assert stalls[0]["key"] == "deadpoint"
        assert stalls[0]["lost_pid"] == proc.pid
        assert hub.state.workers[proc.pid].lost
        run_end = [e for e in seen if e["kind"] == "run_end"]
        assert len(run_end) == 1 and run_end[0]["stalls"] >= 1
        assert hub.state.finished
        for doc in seen:
            assert validate_stream_event(doc) == []


# ------------------------------------------------------ stream writer / top
class TestStreamWriterAndTop:
    def _write_run(self, path, extra_lines=()):
        writer = StreamWriter(str(path))
        for doc in [
            make_event("run_start", run_id="r1", cmd="figures", jobs=2),
            make_event("batch", n_tasks=2, n_hits=0, n_pending=2),
            make_event("point_start", key="k1", method="polling",
                       system="GM", msg_bytes=1, interval_iters=1),
            make_event("point_end", key="k1", method="polling", wall_s=0.1,
                       points_done=1, dropped={}),
            make_event("run_end", wall_s=0.5, done=1, cached=0, stalls=0,
                       dropped={"heartbeat": 2}),
        ]:
            writer(doc)
        writer.close()
        if extra_lines:
            with path.open("a") as fh:
                for line in extra_lines:
                    fh.write(line + "\n")

    def test_stream_file_round_trips_through_state(self, tmp_path):
        stream = tmp_path / "s.ndjson"
        self._write_run(stream)
        for line in stream.read_text().splitlines():
            assert validate_stream_line(line) == []
        state = load_stream_state(stream)
        assert state.finished and state.done == 1 and state.tasks == 2
        assert state.parent_dropped == {"heartbeat": 2}

    def test_invalid_lines_counted_not_fatal(self, tmp_path):
        stream = tmp_path / "s.ndjson"
        self._write_run(stream, extra_lines=["{torn", '{"kind": "alien"}'])
        state = load_stream_state(stream)
        assert state.invalid_lines == 2
        assert state.finished  # the valid prefix still folded

    def test_fd_target(self, tmp_path):
        out = tmp_path / "fd.ndjson"
        fd = os.open(str(out), os.O_WRONLY | os.O_CREAT, 0o644)
        writer = StreamWriter(str(fd))
        writer(make_event("figure_start", figure="fig04"))
        writer.close()
        assert json.loads(out.read_text())["kind"] == "figure_start"

    def test_render_top_and_run_top_once(self, tmp_path):
        stream = tmp_path / "s.ndjson"
        self._write_run(stream)
        screen = render_top(load_stream_state(stream))
        assert "run r1 [finished]" in screen
        assert "1 done" in screen and "heartbeat=2" in screen
        out = io.StringIO()
        assert run_top(stream, once=True, out=out) == 0
        assert "comb top" in out.getvalue()

    def test_progress_renderer_full_run(self):
        out = io.StringIO()
        renderer = ProgressRenderer(out=out)
        for doc in [
            make_event("run_start", run_id="r1", cmd="figures", jobs=1),
            make_event("batch", n_tasks=2, n_hits=1, n_pending=1),
            make_event("point_cached", key="kc", method="polling",
                       system="GM", outcome="hit"),
            make_event("stall", key="k1", method="polling", elapsed_s=9.0,
                       predicted_s=1.0, factor=9.0),
            make_event("run_end", wall_s=1.5, done=1, cached=1, stalls=1,
                       dropped={"heartbeat": 3}),
        ]:
            renderer(doc)
        text = out.getvalue()
        assert "stall" in text
        assert "simulated, 1 cached" in text
        assert "dropped 3 events" in text

    def test_hub_detaches_failing_consumer(self):
        def exploding(doc):
            raise OSError("disk full")

        channel = TelemetryChannel(capacity=8)
        hub = TelemetryHub(channel, consumers=[exploding])
        hub.start("r1", "test", jobs=1)
        hub.close()  # must not raise; consumer detached and remembered
        assert hub.consumers == []
        assert any("disk full" in e for e in hub.consumer_errors)


# --------------------------------------------------- executor integration
class TestExecutorTelemetry:
    def _run_with_hub(self, jobs, tasks=TASKS):
        seen = []
        channel = TelemetryChannel(heartbeat_s=0.05)
        hub = TelemetryHub(channel, consumers=[seen.append])
        hub.start("run1", "test", jobs=jobs)
        with SweepExecutor(jobs=jobs, telemetry=channel) as ex:
            points = ex.run(tasks)
        hub.close()
        return points, seen, hub

    def test_serial_lifecycle_and_bit_identity(self):
        with SweepExecutor() as ex:
            bare = ex.run(TASKS)
        points, seen, hub = self._run_with_hub(jobs=1)
        assert points == bare  # telemetry is observation-only
        assert not worker_armed()  # executor close disarms the parent
        kinds = [e["kind"] for e in seen]
        assert kinds.count("point_start") == len(TASKS)
        assert kinds.count("point_end") == len(TASKS)
        batch = next(e for e in seen if e["kind"] == "batch")
        assert batch["n_tasks"] == len(TASKS)
        assert batch["n_pending"] == len(TASKS)
        assert hub.state.done == len(TASKS)
        for doc in seen:
            assert validate_stream_event(doc) == []

    def test_pooled_lifecycle_and_bit_identity(self):
        with SweepExecutor() as ex:
            bare = ex.run(TASKS)
        points, seen, hub = self._run_with_hub(jobs=2)
        assert points == bare
        ends = [e for e in seen if e["kind"] == "point_end"]
        assert len(ends) == len(TASKS)
        worker_pids = {e["pid"] for e in ends}
        assert os.getpid() not in worker_pids  # pool workers emitted
        assert hub.state.done == len(TASKS)
        for doc in seen:
            assert validate_stream_event(doc) == []

    def test_memo_hits_emit_point_cached(self):
        seen = []
        channel = TelemetryChannel()
        hub = TelemetryHub(channel, consumers=[seen.append])
        hub.start("run1", "test", jobs=1)
        with SweepExecutor(telemetry=channel) as ex:
            ex.run(TASKS)
            ex.run(TASKS)  # second pass: all memo hits
        hub.close()
        cached = [e for e in seen if e["kind"] == "point_cached"]
        assert len(cached) == len(TASKS)
        assert {e["outcome"] for e in cached} == {"hit"}
        assert hub.state.cached == len(TASKS)


# --------------------------------------------------- chrome trace executor row
class TestChromeTraceExecutorRow:
    def test_markers_land_on_their_own_process_row(self):
        observer = Observer()
        with use_observer(observer):
            with SweepExecutor() as ex:
                ex.run(TASKS[:2])
                ex.run(TASKS[:2])  # memo hits → point_cached marks
        doc = chrome_trace(observer.tracer.events(), label="unit")
        exec_rows = [r for r in doc["traceEvents"]
                     if r.get("pid") == EXECUTOR_PID]
        metas = [r["name"] for r in exec_rows if r.get("ph") == "M"]
        assert "process_name" in metas and "thread_name" in metas
        slices = [r for r in exec_rows if r.get("ph") == "X"]
        assert len(slices) == 2
        assert all(r["name"] == "point.polling" for r in slices)
        assert all(r["args"]["system"] == "GM" for r in slices)
        marks = [r for r in exec_rows
                 if r.get("ph") == "i" and r["name"] == "point.cached"]
        assert len(marks) == 2  # the two memo hits
        # No executor marker leaked onto the sim-event rows.
        sim_rows = [r for r in doc["traceEvents"]
                    if r.get("pid") not in (EXECUTOR_PID,)
                    and r.get("cat") == "executor"]
        assert sim_rows == []
