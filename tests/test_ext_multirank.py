"""Tests: multi-peer fan-in polling (ext beyond the paper)."""

import pytest

from repro.config import gm_system, portals_system
from repro.core import PollingConfig
from repro.ext import run_fanin_polling

KB = 1024

# Fan-in needs longer windows: more messages in flight means larger
# window-edge bias at short measures.
CFG = PollingConfig(msg_bytes=100 * KB, poll_interval_iters=1_000,
                    measure_s=0.1, warmup_s=0.02)


class TestValidation:
    def test_zero_peers_rejected(self, gm):
        with pytest.raises(ValueError):
            run_fanin_polling(gm, CFG, 0)

    def test_too_many_peers_rejected(self, gm):
        with pytest.raises(ValueError):
            run_fanin_polling(gm, CFG, 8)  # 8 peers + worker > 8 ports


class TestFanIn:
    def test_single_peer_matches_two_node_comb(self, gm):
        """n_peers=1 must be the ordinary polling method."""
        from repro.core import run_polling

        fan = run_fanin_polling(gm, CFG, 1)
        two = run_polling(gm, CFG)
        assert fan.point.bandwidth_Bps == pytest.approx(
            two.bandwidth_Bps, rel=0.02
        )
        assert fan.point.availability == pytest.approx(
            two.availability, abs=0.02
        )

    def test_gm_stays_bus_bound(self, gm):
        """More peers cannot push GM past the worker's host bus, and the
        worker's availability barely moves (no interrupts)."""
        one = run_fanin_polling(gm, CFG, 1)
        seven = run_fanin_polling(gm, CFG, 7)
        bus = gm.machine.nic.host_dma_bandwidth_Bps
        assert seven.point.bandwidth_Bps <= bus * 1.05
        assert seven.point.availability == pytest.approx(
            one.point.availability, abs=0.05
        )

    def test_portals_worker_cpu_saturates(self, portals):
        """Fan-in drives the kernel share up: availability falls while
        aggregate bandwidth gains little."""
        one = run_fanin_polling(portals, CFG, 1)
        seven = run_fanin_polling(portals, CFG, 7)
        assert seven.point.availability < one.point.availability
        assert seven.point.bandwidth_Bps < 1.6 * one.point.bandwidth_Bps

    def test_per_peer_bandwidth_dilutes(self, portals):
        seven = run_fanin_polling(portals, CFG, 7)
        one = run_fanin_polling(portals, CFG, 1)
        assert seven.per_peer_bandwidth_Bps < 0.5 * one.per_peer_bandwidth_Bps
