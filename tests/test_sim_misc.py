"""Unit tests: RNG registry, tracer, unit helpers."""

import pytest

from repro.sim import Engine, RngRegistry, Tracer
from repro.sim.units import (
    kib,
    mbps,
    mhz,
    mib,
    msec,
    nsec,
    to_mbps,
    to_usec,
    usec,
)


class TestRng:
    def test_same_seed_same_stream(self):
        a = RngRegistry(7).stream("x").integers(0, 1000, 10)
        b = RngRegistry(7).stream("x").integers(0, 1000, 10)
        assert list(a) == list(b)

    def test_streams_are_independent_of_creation_order(self):
        reg1 = RngRegistry(7)
        s_a1 = list(reg1.stream("a").integers(0, 1000, 5))
        _ = reg1.stream("b")
        reg2 = RngRegistry(7)
        _ = reg2.stream("b")
        s_a2 = list(reg2.stream("a").integers(0, 1000, 5))
        assert s_a1 == s_a2

    def test_different_names_differ(self):
        reg = RngRegistry(7)
        a = list(reg.stream("a").integers(0, 10**9, 8))
        b = list(reg.stream("b").integers(0, 10**9, 8))
        assert a != b

    def test_reset_restarts_sequences(self):
        reg = RngRegistry(3)
        first = list(reg.stream("s").integers(0, 10**9, 4))
        reg.reset()
        again = list(reg.stream("s").integers(0, 10**9, 4))
        assert first == again

    def test_stream_is_cached(self):
        reg = RngRegistry(1)
        assert reg.stream("x") is reg.stream("x")


class TestTracer:
    def test_records_and_filters(self):
        tr = Tracer(kinds={"keep"})
        tr.record(1.0, "src", "keep", "a")
        tr.record(2.0, "src", "drop", "b")
        assert len(tr.records) == 1
        assert tr.of_kind("keep")[0].detail == "a"

    def test_unfiltered_records_everything(self):
        tr = Tracer()
        tr.record(1.0, "s", "x")
        tr.record(2.0, "s", "y")
        assert len(tr.records) == 2

    def test_sink_invoked(self):
        seen = []
        tr = Tracer(sink=seen.append)
        tr.record(0.0, "s", "k")
        assert len(seen) == 1

    def test_engine_kernel_tracing_gated(self):
        tr = Tracer(kinds={"kernel"})
        eng = Engine(trace=tr)
        eng.timeout(1.0)
        eng.run()
        assert tr.of_kind("kernel")

    def test_clear(self):
        tr = Tracer()
        tr.record(0.0, "s", "k")
        tr.clear()
        assert tr.records == []


class TestUnits:
    def test_time_units(self):
        assert usec(45) == pytest.approx(45e-6)
        assert msec(2) == pytest.approx(2e-3)
        assert nsec(4) == pytest.approx(4e-9)
        assert to_usec(1e-3) == pytest.approx(1000)

    def test_byte_units(self):
        assert kib(10) == 10 * 1024
        assert mib(2) == 2 * 1024 * 1024

    def test_bandwidth_units(self):
        assert mbps(88) == pytest.approx(88e6)
        assert to_mbps(88e6) == pytest.approx(88)

    def test_frequency(self):
        assert mhz(500) == pytest.approx(5e8)

    def test_round_trips(self):
        assert to_mbps(mbps(123.4)) == pytest.approx(123.4)
        assert to_usec(usec(7.7)) == pytest.approx(7.7)
