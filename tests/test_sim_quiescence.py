"""Tests: the engine-level quiescence fast-forward and its appliers.

:meth:`repro.sim.engine.Engine.fast_forward` is the engine facility —
an analytic clock jump across a span the caller knows to be quiescent.
:mod:`repro.core.quiescence` holds the two appliers the method drivers
share: :func:`quiescent_compute` (PWW / workloop dry intervals) and
:func:`absorb_empty_cycles` (polling's empty-poll-cycle aggregation).
Correctness rests on two contracts pinned here: the jump refuses
whenever a pending heap event could be reordered against the caller's
continuation, and the appliers' time/accounting arithmetic equals the
legacy compute path bit for bit.
"""

import pytest

from repro.config import CpuConfig, gm_system
from repro.core import PwwConfig, run_pww
from repro.core.quiescence import quiescent_compute
from repro.hardware.cpu import CPU
from repro.obs import Observer
from repro.obs.context import use_observer
from repro.sim import Engine


@pytest.fixture
def engine():
    return Engine()


class TestFastForward:
    def test_empty_heap_jumps(self, engine):
        assert engine.fast_forward(2.5) is True
        assert engine.now == 2.5
        # An analytic jump dispatches nothing.
        assert engine.events_processed == 0

    def test_refuses_past_and_present(self, engine):
        engine.fast_forward(1.0)
        assert engine.fast_forward(0.5) is False
        assert engine.fast_forward(1.0) is False
        assert engine.now == 1.0

    def test_pending_event_before_target_refuses(self, engine):
        engine.timeout(1.0)
        assert engine.fast_forward(2.0) is False
        assert engine.now == 0.0

    def test_pending_event_exactly_at_target_refuses(self, engine):
        """An event *at* the target is ordered against the caller's
        continuation by heap sequence numbers the caller cannot know —
        the jump must refuse rather than guess."""
        engine.timeout(2.0)
        assert engine.fast_forward(2.0) is False
        assert engine.now == 0.0

    def test_pending_event_after_target_allows(self, engine):
        engine.timeout(3.0)
        assert engine.fast_forward(2.0) is True
        assert engine.now == 2.0
        engine.run()
        assert engine.now == 3.0


class TestQuiescentCompute:
    def _cpu(self, engine):
        return CPU(engine, CpuConfig(), name="cpu")

    def test_quiet_cpu_jumps_with_exact_accounting(self, engine):
        cpu = self._cpu(engine)
        ctx = cpu.new_context("a")

        def proc():
            yield from quiescent_compute(cpu, ctx, 0.25)
            return engine.now

        p = engine.spawn(proc())
        engine.run(p)
        assert p.value == 0.25
        assert ctx.user_time_s == 0.25
        assert cpu.user_time_s == 0.25
        # The span was analytic: no heap events beyond process start-up.
        assert engine.events_processed <= 2

    def test_pending_event_falls_back_to_compute(self, engine):
        cpu = self._cpu(engine)
        ctx = cpu.new_context("a")
        engine.timeout(0.1)  # forbids the jump

        def proc():
            yield from quiescent_compute(cpu, ctx, 0.25)
            return engine.now

        p = engine.spawn(proc())
        engine.run(p)
        # The legacy timeslicing path accumulates quantum float error the
        # analytic jump does not have; approximate equality is its spec.
        assert p.value == pytest.approx(0.25)
        assert ctx.user_time_s == pytest.approx(0.25)

    def test_contended_cpu_falls_back(self, engine):
        cpu = self._cpu(engine)
        a, b = cpu.new_context("a"), cpu.new_context("b")
        done = []

        def worker(ctx, t):
            yield from quiescent_compute(cpu, ctx, t)
            done.append((ctx.name, engine.now))

        engine.spawn(worker(a, 0.2))
        engine.spawn(worker(b, 0.2))
        engine.run()
        # Two runnable contexts share the core round-robin: neither span
        # is quiescent, so both must take the legacy timeslicing path and
        # finish around 0.4 (not 0.2 twice in zero wall time).
        assert len(done) == 2
        assert all(t == pytest.approx(0.4, rel=0.1) for _n, t in done)
        assert a.user_time_s == pytest.approx(0.2)
        assert b.user_time_s == pytest.approx(0.2)

    def test_zero_span_is_legacy(self, engine):
        cpu = self._cpu(engine)
        ctx = cpu.new_context("a")

        def proc():
            yield from quiescent_compute(cpu, ctx, 0.0)
            return engine.now

        p = engine.spawn(proc())
        engine.run(p)
        assert p.value == 0.0


def test_pww_quiescent_equals_legacy_traced():
    """End to end: the PWW dry work phase (the heaviest quiescent-span
    user) must be bit-identical with the fast-forward active (bare) and
    inactive (traced runs disable the burst pump but keep quiescence —
    the jump itself must be exact either way)."""
    cfg = PwwConfig(msg_bytes=64 * 1024, work_interval_iters=2_000_000,
                    batches=4, warmup_batches=1)
    bare = run_pww(gm_system(), cfg)
    with use_observer(Observer()):
        traced = run_pww(gm_system(), cfg)
    assert bare == traced
