"""Edge-case and semantics-documentation tests across the stack."""

import dataclasses

import pytest

from repro.config import FaultConfig, gm_system, portals_system
from repro.mpi import build_world
from repro.sim import Engine, SimulationError, Tracer

KB = 1024


class TestBarrierEdge:
    def test_barrier_spans_n_ranks(self, gm):
        # Formerly pinned NotImplementedError for world_size != 2; the
        # handle now delegates to the dissemination barrier, so a 3-rank
        # barrier completes once every rank arrives.
        world = build_world(gm, n_nodes=3)
        engine = world.engine
        done = []

        def proc(rank):
            h = world.endpoint(rank).bind(
                world.cluster[rank].new_context(f"b{rank}")
            )
            yield from h.barrier()
            done.append(rank)

        procs = [engine.spawn(proc(r)) for r in range(3)]
        engine.run(engine.all_of(procs))
        assert sorted(done) == [0, 1, 2]


class TestGmOverLossyWire:
    def test_gm_assumes_reliable_fabric(self, gm):
        """GM (like real Myrinet GM) has no retransmission: a lossy wire
        strands the transfer, which the simulator surfaces as a deadlock
        rather than silently conjuring the data."""
        lossy = dataclasses.replace(
            gm, machine=dataclasses.replace(
                gm.machine, fault=FaultConfig(data_loss_rate=0.5)
            ),
        )
        world = build_world(lossy)
        engine = world.engine
        h0 = world.endpoint(0).bind(world.cluster[0].new_context("a"))
        h1 = world.endpoint(1).bind(world.cluster[1].new_context("b"))

        def rank0():
            yield from h0.recv(1, 200 * KB, tag=1)

        def rank1():
            yield from h1.send(0, 200 * KB, tag=1)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        with pytest.raises(SimulationError, match="deadlock"):
            engine.run(p0)


class TestTracing:
    def test_wire_events_recorded(self, gm):
        tracer = Tracer(kinds={"wire_tx", "wire_rx", "packet_tx"})
        world = build_world(gm, tracer=tracer)
        engine = world.engine
        h0 = world.endpoint(0).bind(world.cluster[0].new_context("a"))
        h1 = world.endpoint(1).bind(world.cluster[1].new_context("b"))

        def rank0():
            yield from h0.send(1, 10 * KB, tag=1)

        def rank1():
            yield from h1.recv(0, 10 * KB, tag=1)

        p0 = engine.spawn(rank0())
        p1 = engine.spawn(rank1())
        engine.run(engine.all_of([p0, p1]))
        tx = tracer.of_kind("packet_tx")
        rx = tracer.of_kind("wire_rx")
        assert len(tx) >= 3  # 10 KB = 3 MTU fragments
        assert len(rx) >= 3
        # Chronological order within each stream.
        times = [r.time for r in rx]
        assert times == sorted(times)

    def test_drop_events_recorded(self):
        tracer = Tracer(kinds={"wire_drop"})
        lossy = dataclasses.replace(
            portals_system(), machine=dataclasses.replace(
                portals_system().machine,
                fault=FaultConfig(data_loss_rate=0.2),
            ),
        )
        world = build_world(lossy, tracer=tracer)
        engine = world.engine
        h0 = world.endpoint(0).bind(world.cluster[0].new_context("a"))
        h1 = world.endpoint(1).bind(world.cluster[1].new_context("b"))

        def rank0():
            yield from h0.recv(1, 100 * KB, tag=1)

        def rank1():
            yield from h1.send(0, 100 * KB, tag=1)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert tracer.of_kind("wire_drop")


class TestZeroByteSemantics:
    def test_zero_byte_message_both_systems(self, either_system):
        """Zero-byte messages still synchronize (envelope-only packet)."""
        world = build_world(either_system)
        engine = world.engine
        h0 = world.endpoint(0).bind(world.cluster[0].new_context("a"))
        h1 = world.endpoint(1).bind(world.cluster[1].new_context("b"))
        out = {}

        def rank0():
            req = yield from h0.recv(1, 0, tag=3)
            out["tag"] = req.match_tag

        def rank1():
            yield from h1.send(0, 0, tag=3)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert out["tag"] == 3
        assert h0.device.stats.msgs_recv_done == 1
        assert h0.device.stats.bytes_recv_done == 0


class TestManyOutstandingRequests:
    def test_hundred_concurrent_messages(self, either_system):
        """Queue pressure: 100 small messages posted before any waits."""
        world = build_world(either_system)
        engine = world.engine
        h0 = world.endpoint(0).bind(world.cluster[0].new_context("a"))
        h1 = world.endpoint(1).bind(world.cluster[1].new_context("b"))
        n = 100

        def rank0():
            reqs = []
            for i in range(n):
                r = yield from h0.irecv(1, 2 * KB, tag=i)
                reqs.append(r)
            yield from h0.waitall(reqs)

        def rank1():
            reqs = []
            for i in range(n):
                r = yield from h1.isend(0, 2 * KB, tag=i)
                reqs.append(r)
            yield from h1.waitall(reqs)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert h0.device.stats.msgs_recv_done == n


class TestInterleaveDrain:
    def test_interleaved_pww_drains_backlog(self, gm):
        """With interleave > 1 the tail batches complete after the last
        measured cycle — nothing leaks."""
        from repro.core import PwwConfig, run_pww

        pt = run_pww(gm, PwwConfig(
            msg_bytes=50 * KB, work_interval_iters=50_000,
            batches=5, warmup_batches=1, interleave=3,
        ))
        assert pt.batches == 5
        assert pt.bandwidth_Bps > 0


class TestEngineTraceHook:
    def test_kernel_trace_records_processed_events(self):
        tracer = Tracer(kinds={"kernel"})
        engine = Engine(trace=tracer)
        engine.timeout(1.0)
        engine.timeout(2.0)
        engine.run()
        assert len(tracer.of_kind("kernel")) == 2
