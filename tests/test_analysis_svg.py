"""Tests: the dependency-free SVG renderer."""

import math

import pytest

from repro.analysis.figures import Curve, FigureData
from repro.analysis.svg_plot import (
    _fmt,
    _log_ticks,
    _nice_ticks,
    render_svg,
    write_svg,
)


def fig(xscale="log", yscale="linear", curves=None):
    return FigureData(
        "figXX", "A <Title> & more", "X axis", "Y axis",
        curves if curves is not None else [
            Curve("GM", [10, 100, 1000], [88, 85, 20]),
            Curve("Portals", [10, 100, 1000], [50, 48, 10]),
        ],
        xscale=xscale, yscale=yscale,
    )


class TestTickHelpers:
    def test_nice_ticks_round_values(self):
        ticks = _nice_ticks(0, 97)
        assert all(t == round(t, 10) for t in ticks)
        assert ticks[0] >= 0 and ticks[-1] <= 97 + 1e-9
        assert len(ticks) >= 3

    def test_nice_ticks_degenerate(self):
        assert _nice_ticks(5, 5) == [5]

    def test_log_ticks_powers_of_ten(self):
        ticks = _log_ticks(30, 40000)
        assert ticks == [10.0, 100.0, 1000.0, 10000.0, 100000.0]

    def test_fmt(self):
        assert _fmt(0) == "0"
        assert _fmt(100000) == "1e5"
        assert _fmt(0.5) == "0.5"
        assert _fmt(3.2e7) == "3.2e7"


class TestRenderSvg:
    def test_contains_structure(self):
        svg = render_svg(fig())
        assert svg.startswith("<svg")
        assert svg.count("<polyline") == 2
        assert svg.count("<circle") == 6
        assert "GM" in svg and "Portals" in svg

    def test_escapes_markup(self):
        svg = render_svg(fig())
        assert "&lt;Title&gt;" in svg and "&amp;" in svg
        assert "<Title>" not in svg

    def test_linear_axes(self):
        svg = render_svg(fig(xscale="linear"))
        assert "<svg" in svg

    def test_log_y_axis(self):
        svg = render_svg(fig(yscale="log"))
        assert "<svg" in svg

    def test_log_scale_drops_nonpositive_points(self):
        svg = render_svg(fig(curves=[Curve("c", [0, 10, 100], [1, 2, 3])]))
        # Point at x=0 cannot be mapped on a log axis; two remain.
        assert svg.count("<circle") == 2

    def test_empty_figure(self):
        svg = render_svg(fig(curves=[Curve("e", [], [])]))
        assert "no data" in svg

    def test_write_svg(self, tmp_path):
        path = write_svg(fig(), tmp_path / "nested" / "f.svg")
        assert path.exists()
        assert path.read_text().startswith("<svg")

    def test_export_writes_all_three_formats(self, tmp_path):
        from repro.analysis import export_figures

        written = export_figures([fig()], tmp_path)
        suffixes = sorted(p.suffix for p in written)
        assert suffixes == [".csv", ".json", ".svg"]
