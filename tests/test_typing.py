"""Strict-typing gate for repro.lint / repro.verify / repro.core / repro.obs.

Runs mypy (configured in pyproject.toml) over the strict packages.  The
check is skipped when mypy is not installed — the canonical run is the
CI ``typecheck`` job; locally it activates automatically once mypy is
present (``pip install -e .[typecheck]``).
"""

import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("mypy")

REPO = Path(__file__).parent.parent


def test_strict_packages_pass_mypy():
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--config-file",
            str(REPO / "pyproject.toml"),
            "-p",
            "repro.lint",
            "-p",
            "repro.verify",
            "-p",
            "repro.core",
            "-p",
            "repro.obs",
        ],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
