"""Span stitching (`repro.obs.spans`): event streams → causal span trees."""

import pytest

from repro.config import gm_system, portals_system
from repro.core.pww import PwwConfig, run_pww
from repro.obs import Observer, stitch, use_observer
from repro.obs.spans import (
    CHILD_SPAN_NAMES,
    SPAN_COMPLETION,
    SPAN_DATA_WIRE,
    SPAN_HANDSHAKE_STALL,
    SPAN_MSG,
    SPAN_PROGRESS_STALL,
    SPAN_RTS_WIRE,
)
from repro.obs.tracer import ObsEvent


def _traced_pww(system, **cfg):
    obs = Observer()
    with use_observer(obs):
        point = run_pww(system, PwwConfig(**cfg))
    return point, obs.events()


@pytest.fixture(scope="module")
def gm_forest():
    _, events = _traced_pww(
        gm_system(), msg_bytes=100 * 1024, work_interval_iters=1_000_000
    )
    return stitch(events)


def test_stitch_empty_stream():
    forest = stitch([])
    assert len(forest) == 0
    assert forest.spans() == []
    assert forest.to_dicts() == []


def test_gm_rendezvous_messages_have_handshake_spans(gm_forest):
    rndv = [m for m in gm_forest if not m.eager]
    assert rndv, "large-message GM run produced no rendezvous messages"
    for msg in rndv:
        names = {s.name for s in msg.children}
        assert SPAN_RTS_WIRE in names
        assert SPAN_DATA_WIRE in names
        # The Progress Rule violation: a stall on at least one side.
        assert SPAN_HANDSHAKE_STALL in names or SPAN_PROGRESS_STALL in names


def test_gm_progress_stall_dominates_wire(gm_forest):
    """With a long work phase, GM's CTS sits at the sender for roughly
    the work interval — the stall dwarfs the actual wire time."""
    stalls = [
        m.stall_total_s for m in gm_forest
        if not m.eager and m.stall_total_s > 0
    ]
    assert stalls
    wire = max(
        (s.duration_s for m in gm_forest for s in m.children
         if s.name == SPAN_DATA_WIRE),
        default=0.0,
    )
    assert max(stalls) > wire


def test_portals_stalls_near_zero():
    """An offloaded NIC answers the handshake without application help."""
    _, events = _traced_pww(
        portals_system(), msg_bytes=100 * 1024, work_interval_iters=1_000_000
    )
    forest = stitch(events)
    rndv = [m for m in forest if not m.eager]
    assert rndv
    gm_forest_stall = max(m.stall_total_s for m in rndv)
    data_wire = max(
        s.duration_s for m in rndv for s in m.children
        if s.name == SPAN_DATA_WIRE
    )
    assert gm_forest_stall < data_wire


def test_eager_messages_flagged(gm_forest):
    # The small ACK-less control traffic under the eager threshold.
    _, events = _traced_pww(
        gm_system(), msg_bytes=8, work_interval_iters=10_000
    )
    forest = stitch(events)
    assert any(m.eager for m in forest)
    for msg in forest:
        if msg.eager:
            assert msg.child(SPAN_RTS_WIRE) is None


def test_well_formed_tree(gm_forest):
    for msg in gm_forest:
        assert msg.root.name == SPAN_MSG
        assert msg.root.parent_id is None
        for child in msg.children:
            assert child.parent_id == msg.root.span_id
            assert child.name in CHILD_SPAN_NAMES
            assert child.duration_s >= 0
            assert child.t0_s >= msg.root.t0_s - 1e-12
            assert child.t1_s <= msg.root.t1_s + 1e-12


def test_span_ids_unique(gm_forest):
    ids = [s.span_id for s in gm_forest.spans()]
    assert len(ids) == len(set(ids))


def test_req_ids_bound(gm_forest):
    bound = [m for m in gm_forest if m.req_ids]
    assert bound, "msg_bind events missing: no request bound to any message"


def test_completion_span_needs_late_complete(gm_forest):
    for msg in gm_forest:
        comp = msg.child(SPAN_COMPLETION)
        if comp is not None:
            data = msg.child(SPAN_DATA_WIRE)
            assert data is not None
            assert comp.t0_s == data.t1_s


def test_ack_packets_ignored():
    """GM token-return ACKs reuse a consumed msg_id; stitching must not
    let them resurrect or stretch that message's root span."""
    events = [
        ObsEvent(0, 1.0, "node0.nic", "packet_tx", ("data", 7, 0)),
        ObsEvent(1, 2.0, "node1.nic", "nic_rx", ("data", 7, 0)),
        ObsEvent(2, 50.0, "node1.nic", "packet_tx", ("ack", 7, 0)),
    ]
    forest = stitch(events)
    assert forest.messages[7].root.t1_s == 2.0


def test_missing_endpoint_produces_no_span():
    events = [
        ObsEvent(0, 1.0, "node0.nic", "packet_tx", ("rts", 3, 0)),
    ]
    forest = stitch(events)
    msg = forest.messages[3]
    assert msg.children == []
    assert not msg.eager  # an RTS was seen, so it is a rendezvous message
