"""Property tests: arbitrary event streams stitch into well-formed forests.

The ISSUE's invariants, for adversarial draws:

* **no cycles** — parent links form a forest (every child points at a
  root, roots point nowhere);
* **child within parent** — every child span's interval lies inside its
  message root's interval;
* **attribution fractions sum to 1 ± ulp** whenever any time was
  attributed, for arbitrary windows over arbitrary stitched streams.

Streams are drawn two ways: fully synthetic packet soup (including
out-of-order, duplicated, and endpoint-missing events — worse than any
ring-buffer truncation can produce), and real traced simulator runs
subsampled at random (which *is* ring-buffer truncation).
"""

import math

from hypothesis import given, settings, strategies as st

from repro.config import gm_system
from repro.core.pww import PwwConfig, run_pww
from repro.obs import Observer, attribute_window, stitch, use_observer
from repro.obs.spans import CHILD_SPAN_NAMES, SPAN_MSG
from repro.obs.tracer import ObsEvent

_PKT_KINDS = ("rts", "cts", "data", "ack")
_TIMES = st.floats(min_value=0.0, max_value=1.0,
                   allow_nan=False, allow_infinity=False)


@st.composite
def _packet_events(draw):
    """A shuffled soup of packet/req/bind events over a few msg_ids."""
    n = draw(st.integers(min_value=0, max_value=60))
    events = []
    for seq in range(n):
        time_s = draw(_TIMES)
        which = draw(st.integers(min_value=0, max_value=4))
        msg_id = draw(st.integers(min_value=1, max_value=5))
        if which in (0, 1):
            kind = "packet_tx" if which == 0 else "nic_rx"
            pkt = draw(st.sampled_from(_PKT_KINDS))
            detail = (pkt, msg_id, draw(st.integers(0, 3)))
            events.append(ObsEvent(seq, time_s, "node0.nic", kind, detail))
        elif which == 2:
            events.append(ObsEvent(seq, time_s, "rank0.gm", "gm_token_wait",
                                   (msg_id, 1)))
        elif which == 3:
            req_id = draw(st.integers(min_value=1, max_value=8))
            events.append(ObsEvent(seq, time_s, "mpi.req", "msg_bind",
                                   (req_id, msg_id, "send")))
        else:
            req_id = draw(st.integers(min_value=1, max_value=8))
            kind = draw(st.sampled_from(["req_post", "req_complete"]))
            events.append(ObsEvent(seq, time_s, "mpi.req", kind,
                                   (req_id, "send", 1, 11, 1024)))
    return draw(st.permutations(events))


def _assert_well_formed(forest):
    span_ids = set()
    for msg in forest:
        root = msg.root
        assert root.name == SPAN_MSG
        assert root.parent_id is None
        assert root.t1_s >= root.t0_s
        assert root.span_id not in span_ids
        span_ids.add(root.span_id)
        for child in msg.children:
            # Forest shape: children point at their root, which points
            # nowhere — two levels, so no cycle is constructible.
            assert child.parent_id == root.span_id
            assert child.span_id != root.span_id
            assert child.span_id not in span_ids
            span_ids.add(child.span_id)
            assert child.name in CHILD_SPAN_NAMES
            assert child.duration_s >= 0
            assert child.t0_s >= root.t0_s - 1e-12
            assert child.t1_s <= root.t1_s + 1e-12
        names = [c.name for c in msg.children]
        assert len(names) == len(set(names)), "duplicate child span kind"


@given(events=_packet_events())
def test_arbitrary_streams_stitch_well_formed(events):
    _assert_well_formed(stitch(events))


@given(events=_packet_events(), w0=_TIMES,
       width=st.floats(min_value=1e-9, max_value=1.0,
                       allow_nan=False, allow_infinity=False))
def test_attribution_fractions_sum_to_one(events, w0, width):
    forest = stitch(events)
    causes = attribute_window(forest, w0, w0 + width)
    total = sum(causes.values())
    assert all(v >= 0 for v in causes.values())
    # The sweep partitions the window exactly; the counterfactual step
    # only moves seconds between causes.
    assert math.isclose(total, width, rel_tol=1e-9, abs_tol=1e-15)
    fractions = {k: v / total for k, v in causes.items()} if total else {}
    if fractions:
        assert math.isclose(sum(fractions.values()), 1.0, rel_tol=1e-9)


@given(events=_packet_events())
def test_stitch_order_insensitive(events):
    """seq-sorting inside stitch makes input order irrelevant."""
    a = stitch(events).to_dicts()
    b = stitch(list(reversed(events))).to_dicts()
    assert a == b


# ------------------------------------------------- real-run subsample draws
def _real_events():
    obs = Observer()
    with use_observer(obs):
        run_pww(gm_system(), PwwConfig(
            msg_bytes=64 * 1024, work_interval_iters=50_000, batches=4,
            warmup_batches=1,
        ))
    return obs.events()


_REAL_EVENTS = None


def _real():
    global _REAL_EVENTS
    if _REAL_EVENTS is None:
        _REAL_EVENTS = _real_events()
    return _REAL_EVENTS


@settings(max_examples=20)
@given(data=st.data())
def test_truncated_real_streams_stitch_well_formed(data):
    """Random subsets of a real traced run (≈ ring-buffer truncation)."""
    events = _real()
    keep = data.draw(st.lists(st.booleans(), min_size=len(events),
                              max_size=len(events)))
    subset = [ev for ev, k in zip(events, keep) if k]
    forest = stitch(subset)
    _assert_well_formed(forest)
    causes = attribute_window(forest, 0.0, 0.05)
    assert math.isclose(sum(causes.values()), 0.05, rel_tol=1e-9)
