"""Tests: SMP extension and what-if systems."""

import pytest

from repro.config import portals_system, gm_system
from repro.core import PollingConfig, PwwConfig, run_polling, run_pww
from repro.ext import (
    build_custom_world,
    coalesced_portals,
    offload_nic_system,
    run_smp_polling,
    smp_system,
)
from repro.transport.portals import PortalsDevice

KB = 1024

FAST = dict(measure_s=0.015, warmup_s=0.003, min_cycles=3)


class TestSmp:
    def test_requires_multiple_cpus(self, portals):
        with pytest.raises(ValueError):
            run_smp_polling(portals, PollingConfig())

    def test_interrupts_hit_only_cpu0(self, portals):
        system = smp_system(portals, 2)
        result = run_smp_polling(system, PollingConfig(
            msg_bytes=100 * KB, poll_interval_iters=1_000, **FAST,
        ))
        assert len(result.per_cpu_availability) == 2
        cpu0, cpu1 = result.per_cpu_availability
        assert cpu0 < 0.6          # shares with worker + interrupts
        assert cpu1 > 0.97         # untouched by communication

    def test_four_way_node(self, portals):
        system = smp_system(portals, 4)
        result = run_smp_polling(system, PollingConfig(
            msg_bytes=100 * KB, poll_interval_iters=1_000, **FAST,
        ))
        assert len(result.per_cpu_availability) == 4
        assert all(a > 0.97 for a in result.per_cpu_availability[1:])

    def test_naive_figure_is_cpu0(self, portals):
        system = smp_system(portals, 2)
        result = run_smp_polling(system, PollingConfig(
            msg_bytes=100 * KB, poll_interval_iters=1_000, **FAST,
        ))
        assert result.naive_availability == result.per_cpu_availability[0]


class TestCoalescing:
    def test_improves_cpu_efficiency(self):
        """The Portals pipeline is CPU-bound, so the cycles coalescing
        saves surface as *throughput* at comparable availability: bytes
        moved per CPU-second consumed goes up."""
        stock = run_polling(portals_system(), PollingConfig(
            msg_bytes=100 * KB, poll_interval_iters=1_000, measure_s=0.05,
        ))
        better = run_polling(coalesced_portals(), PollingConfig(
            msg_bytes=100 * KB, poll_interval_iters=1_000, measure_s=0.05,
        ))

        def efficiency(pt):
            return pt.bandwidth_Bps / max(1e-9, 1.0 - pt.availability)

        assert efficiency(better) > efficiency(stock) * 1.03

    def test_counts_coalesced_interrupts(self):
        from repro.mpi import build_world

        world = build_world(coalesced_portals())
        engine = world.engine
        h0 = world.endpoint(0).bind(world.cluster[0].new_context("a"))
        h1 = world.endpoint(1).bind(world.cluster[1].new_context("b"))

        def rank0():
            yield from h0.recv(1, 100 * KB, tag=1)

        def rank1():
            yield from h1.send(0, 100 * KB, tag=1)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert world.cluster[0].irq.coalesced > 0


class TestOffloadNic:
    def test_best_of_both_worlds(self):
        """Offload + no interrupts: GM-class availability with Portals-class
        progress semantics — the design direction the paper motivates."""
        system = offload_nic_system()
        poll = run_polling(system, PollingConfig(
            msg_bytes=100 * KB, poll_interval_iters=1_000, **FAST,
        ))
        assert poll.availability > 0.85
        assert poll.bandwidth_MBps > 70
        assert poll.interrupts == 0

        pww = run_pww(system, PwwConfig(
            msg_bytes=100 * KB, work_interval_iters=5_000_000,
            batches=4, warmup_batches=1,
        ))
        assert pww.wait_s < 1e-4          # offloaded
        assert abs(pww.overhead_s) < 5e-5  # and interrupt-free

    def test_custom_world_builder(self):
        world = build_custom_world(portals_system(), PortalsDevice)
        assert world.size == 2
        assert isinstance(world.endpoint(0).device, PortalsDevice)
