"""Tests: the cross-system comparison table and kernel profiling."""

import pytest

from repro.analysis.tables import (
    HEADERS,
    format_table,
    summarize_system,
    system_comparison,
)
from repro.config import gm_system, portals_system
from repro.ext import offload_nic_system
from repro.mpi import build_world

KB = 1024


class TestSystemSummary:
    def test_gm_row_shape(self, gm):
        row = summarize_system(gm)
        assert row.system == "GM"
        assert not row.offloaded
        assert row.overhead_s == pytest.approx(0.0, abs=1e-7)
        assert row.wait_long_s > 1e-3
        assert 80e6 < row.peak_bandwidth_Bps < 95e6

    def test_portals_row_shape(self, portals):
        row = summarize_system(portals)
        assert row.offloaded
        assert row.overhead_s > 1e-3
        assert row.wait_long_s < 2e-4
        assert row.post_per_msg_s > 5 * 4e-6  # kernel traps

    def test_offload_nic_dominates(self):
        rows = system_comparison([gm_system(), offload_nic_system()])
        gm_row, nic_row = rows
        assert nic_row.offloaded and not gm_row.offloaded
        assert nic_row.latency0_s < gm_row.latency0_s
        assert nic_row.peak_bandwidth_Bps >= 0.95 * gm_row.peak_bandwidth_Bps

    def test_format_table(self, gm):
        text = format_table([summarize_system(gm)])
        lines = text.splitlines()
        assert len(lines) == 3  # header, rule, one row
        for header in HEADERS:
            assert header in lines[0]
        assert "GM" in lines[2]


class TestKernelProfile:
    def test_labels_accumulate(self, portals):
        world = build_world(portals)
        engine = world.engine
        h0 = world.endpoint(0).bind(world.cluster[0].new_context("a"))
        h1 = world.endpoint(1).bind(world.cluster[1].new_context("b"))

        def rank0():
            yield from h0.recv(1, 100 * KB, tag=1)

        def rank1():
            yield from h1.send(0, 100 * KB, tag=1)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        profile = world.cluster[0].cpu.kernel_profile
        assert "portals_rx" in profile and "irecv_trap" in profile
        count, total = profile["portals_rx"]
        assert count == 25  # 100 KB / 4 KB MTU
        assert total == pytest.approx(
            world.cluster[0].cpu.kernel_time_s
            - sum(t for lbl, (_c, t) in profile.items()
                  if lbl != "portals_rx"),
        )

    def test_profile_sums_to_kernel_time(self, portals):
        world = build_world(portals)
        engine = world.engine
        h0 = world.endpoint(0).bind(world.cluster[0].new_context("a"))
        h1 = world.endpoint(1).bind(world.cluster[1].new_context("b"))

        def rank0():
            yield from h0.sendrecv(1, 50 * KB, 1, 50 * KB)

        def rank1():
            yield from h1.sendrecv(0, 50 * KB, 0, 50 * KB)

        p0 = engine.spawn(rank0())
        p1 = engine.spawn(rank1())
        engine.run(engine.all_of([p0, p1]))
        cpu = world.cluster[0].cpu
        total = sum(t for _c, t in cpu.kernel_profile.values())
        assert total == pytest.approx(cpu.kernel_time_s)

    def test_report_renders(self, portals):
        world = build_world(portals)
        engine = world.engine
        h0 = world.endpoint(0).bind(world.cluster[0].new_context("a"))
        h1 = world.endpoint(1).bind(world.cluster[1].new_context("b"))

        def rank0():
            yield from h0.recv(1, 10 * KB, tag=1)

        def rank1():
            yield from h1.send(0, 10 * KB, tag=1)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        report = world.cluster[0].cpu.profile_report()
        assert "portals_rx" in report and "kernel" in report


class TestCompareCli:
    def test_compare_subcommand(self, capsys):
        from repro.cli import main

        rc = main(["compare", "--systems", "GM", "Portals", "--size", "50"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "GM" in out and "Portals" in out
        assert "offload" in out
