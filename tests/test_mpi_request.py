"""Tests: Request lifecycle and the interrupt controller."""

import pytest

from repro.config import CpuConfig, InterruptConfig
from repro.hardware.cpu import CPU
from repro.mpi.request import Request, RequestKind
from repro.os.interrupts import InterruptController
from repro.sim import Engine


@pytest.fixture
def engine():
    return Engine()


class TestRequest:
    def test_initial_state(self, engine):
        req = Request(engine, RequestKind.SEND, peer=1, tag=5, nbytes=100)
        assert not req.done
        assert req.completion_time is None
        assert req.posted_time == 0.0
        assert req.msg_id is None

    def test_complete_records_time_and_match(self, engine):
        req = Request(engine, RequestKind.RECV, 1, 5, 100)
        engine.timeout(2.0)
        engine.run()
        req.complete(src=1, tag=5)
        assert req.done
        assert req.completion_time == 2.0
        assert (req.match_src, req.match_tag) == (1, 5)

    def test_double_complete_rejected(self, engine):
        req = Request(engine, RequestKind.SEND, 1, 5, 100)
        req.complete()
        with pytest.raises(RuntimeError):
            req.complete()

    def test_completion_event_before_done(self, engine):
        req = Request(engine, RequestKind.SEND, 1, 5, 100)
        ev = req.completion_event()
        assert not ev.triggered
        req.complete()
        assert ev.triggered and ev.value is req

    def test_completion_event_after_done(self, engine):
        req = Request(engine, RequestKind.SEND, 1, 5, 100)
        req.complete()
        assert req.completion_event().triggered

    def test_unique_ids(self, engine):
        a = Request(engine, RequestKind.SEND, 1, 0, 0)
        b = Request(engine, RequestKind.SEND, 1, 0, 0)
        assert a.req_id != b.req_id

    def test_repr_mentions_state(self, engine):
        req = Request(engine, RequestKind.RECV, 1, 3, 64)
        assert "pending" in repr(req)
        req.complete()
        assert "done" in repr(req)


class TestInterruptController:
    def _setup(self, engine, coalesce=0.0):
        cpu = CPU(engine, CpuConfig())
        irq = InterruptController(
            cpu, InterruptConfig(coalesce_window_s=coalesce)
        )
        return cpu, irq

    def test_charges_entry_body_exit(self, engine):
        cpu, irq = self._setup(engine)
        irq.raise_irq(10e-6)
        engine.run()
        cfg = InterruptConfig()
        assert cpu.kernel_time_s == pytest.approx(
            cfg.entry_s + 10e-6 + cfg.exit_s
        )
        assert irq.count == 1

    def test_fn_runs_at_completion(self, engine):
        cpu, irq = self._setup(engine)
        fired = []
        irq.raise_irq(5e-6, fn=lambda: fired.append(engine.now))
        engine.run()
        assert fired and fired[0] > 0

    def test_no_coalescing_by_default(self, engine):
        cpu, irq = self._setup(engine)
        irq.raise_irq(10e-6)
        irq.raise_irq(10e-6)
        engine.run()
        assert irq.coalesced == 0

    def test_coalescing_when_kernel_busy(self, engine):
        cpu, irq = self._setup(engine, coalesce=50e-6)
        irq.raise_irq(10e-6)
        irq.raise_irq(10e-6)  # raised while the first handler runs
        engine.run()
        assert irq.coalesced == 1
        cfg = InterruptConfig()
        # Only one entry/exit pair charged.
        assert cpu.kernel_time_s == pytest.approx(
            cfg.entry_s + cfg.exit_s + 20e-6
        )

    def test_time_charged_counter(self, engine):
        cpu, irq = self._setup(engine)
        irq.raise_irq(7e-6)
        engine.run()
        assert irq.time_charged_s == pytest.approx(cpu.kernel_time_s)
