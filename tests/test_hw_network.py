"""Unit tests: link, switch, NIC and cluster wiring."""

import pytest

from repro.config import NicConfig, SwitchConfig, SystemConfig, gm_system
from repro.hardware.cluster import Cluster
from repro.hardware.link import Link
from repro.hardware.memory import COPY_SETUP_S, copy_time
from repro.hardware.nic import NIC, SendJob
from repro.hardware.switch import PortFullError, Switch
from repro.sim import Engine
from repro.transport.packets import Packet, PacketKind, packetize


@pytest.fixture
def engine():
    return Engine()


def _pkt(src=0, dst=1, nbytes=1000, kind=PacketKind.DATA, **kw):
    return Packet(kind=kind, src=src, dst=dst, msg_id=1,
                  payload_bytes=nbytes, is_first=True, is_last=True, **kw)


class TestMemory:
    def test_copy_time_math(self):
        assert copy_time(1000, 1000.0) == pytest.approx(COPY_SETUP_S + 1.0)

    def test_zero_bytes_pays_setup(self):
        assert copy_time(0, 1e6) == pytest.approx(COPY_SETUP_S)

    def test_validation(self):
        with pytest.raises(ValueError):
            copy_time(-1, 1e6)
        with pytest.raises(ValueError):
            copy_time(10, 0.0)


class TestLink:
    def test_serializes_at_bandwidth(self, engine):
        link = Link(engine, bandwidth_Bps=1000.0, latency_s=0.0,
                    header_bytes=0)
        got = []
        link.deliver = lambda p: got.append((engine.now, p.payload_bytes))
        link.send(_pkt(nbytes=500))
        link.send(_pkt(nbytes=500))
        engine.run()
        assert got == [(0.5, 500), (1.0, 500)]

    def test_header_bytes_counted(self, engine):
        link = Link(engine, bandwidth_Bps=1000.0, latency_s=0.0,
                    header_bytes=100)
        got = []
        link.deliver = lambda p: got.append(engine.now)
        link.send(_pkt(nbytes=400))
        engine.run()
        assert got == [pytest.approx(0.5)]
        assert link.bytes_carried == 500

    def test_latency_added_after_serialization(self, engine):
        link = Link(engine, bandwidth_Bps=1000.0, latency_s=2.0,
                    header_bytes=0)
        got = []
        link.deliver = lambda p: got.append(engine.now)
        link.send(_pkt(nbytes=1000))
        engine.run()
        assert got == [pytest.approx(3.0)]

    def test_unattached_link_rejects_send(self, engine):
        link = Link(engine, bandwidth_Bps=1.0, latency_s=0.0, header_bytes=0)
        with pytest.raises(RuntimeError):
            link.send(_pkt())


class TestSwitch:
    def _switch(self, engine, ports=8):
        return Switch(engine, SwitchConfig(ports=ports), NicConfig())

    def test_forwards_to_destination(self, engine):
        sw = self._switch(engine)
        got = {0: [], 1: []}
        sw.attach(0, lambda p: got[0].append(p))
        sw.attach(1, lambda p: got[1].append(p))
        sw.ingress(_pkt(src=0, dst=1))
        engine.run()
        assert len(got[1]) == 1 and not got[0]

    def test_port_exhaustion(self, engine):
        sw = self._switch(engine, ports=2)
        sw.attach(0, lambda p: None)
        sw.attach(1, lambda p: None)
        with pytest.raises(PortFullError):
            sw.attach(2, lambda p: None)

    def test_duplicate_attach_rejected(self, engine):
        sw = self._switch(engine)
        sw.attach(0, lambda p: None)
        with pytest.raises(ValueError):
            sw.attach(0, lambda p: None)

    def test_unattached_destination_rejected(self, engine):
        sw = self._switch(engine)
        sw.attach(0, lambda p: None)
        with pytest.raises(RuntimeError):
            sw.ingress(_pkt(src=0, dst=9))
        engine.run()

    def test_output_port_contention_serializes(self, engine):
        # Two senders to the same destination share its output link.
        sw = self._switch(engine)
        times = []
        sw.attach(0, lambda p: None)
        sw.attach(1, lambda p: None)
        sw.attach(2, lambda p: times.append(engine.now))
        big = NicConfig().wire_bandwidth_Bps
        sw.ingress(_pkt(src=0, dst=2, nbytes=160_000))
        sw.ingress(_pkt(src=1, dst=2, nbytes=160_000))
        engine.run()
        assert len(times) == 2
        # Second packet waits for the first's ~1 ms serialization.
        assert times[1] - times[0] >= 160_000 / big * 0.99


class TestNic:
    def _nic(self, engine, node_id=0):
        nic = NIC(engine, NicConfig(), node_id)
        sent = []
        nic.uplink = sent.append
        return nic, sent

    def test_tx_streams_job(self, engine):
        nic, sent = self._nic(engine)
        pkts = packetize(PacketKind.DATA, 0, 1, 1, 10_000, 4096)
        done = []
        nic.submit(SendJob(pkts, on_done=lambda: done.append(engine.now)))
        engine.run()
        assert len(sent) == 3
        assert done and nic.tx_packets == 3

    def test_on_packet_out_called_per_packet(self, engine):
        nic, _ = self._nic(engine)
        pkts = packetize(PacketKind.DATA, 0, 1, 1, 9000, 4096)
        outs = []
        nic.submit(SendJob(pkts, on_packet_out=lambda p: outs.append(p.index)))
        engine.run()
        assert outs == [0, 1, 2]

    def test_urgent_job_overtakes_bulk(self, engine):
        nic, sent = self._nic(engine)
        bulk = packetize(PacketKind.DATA, 0, 1, 1, 40_960, 4096)
        nic.submit(SendJob(bulk))
        ctrl = _pkt(kind=PacketKind.RTS, nbytes=0)
        nic.submit(SendJob([ctrl], urgent=True))
        engine.run()
        kinds = [p.kind for p in sent]
        # The control packet must not be last (it jumped the bulk queue).
        assert PacketKind.RTS in kinds[:-1]

    def test_empty_job_rejected(self):
        with pytest.raises(ValueError):
            SendJob([])

    def test_rx_data_passes_host_bus(self, engine):
        nic, _ = self._nic(engine)
        got = []
        nic.rx_handler = lambda p: got.append(engine.now)
        nic.deliver(_pkt(nbytes=4096))
        engine.run()
        cfg = NicConfig()
        expected = cfg.dma_setup_s + (4096 + cfg.header_bytes) / cfg.host_dma_bandwidth_Bps
        assert got == [pytest.approx(expected)]

    def test_rx_control_skips_host_bus(self, engine):
        nic, _ = self._nic(engine)
        got = []
        nic.rx_handler = lambda p: got.append(engine.now)
        nic.deliver(_pkt(kind=PacketKind.ACK, nbytes=0))
        engine.run()
        assert got == [pytest.approx(NicConfig().nic_processing_s)]

    def test_rx_without_transport_rejected(self, engine):
        nic, _ = self._nic(engine)
        with pytest.raises(RuntimeError):
            nic.deliver(_pkt())

    def test_host_bus_shared_between_tx_and_rx(self, engine):
        nic, sent = self._nic(engine)
        nic.rx_handler = lambda p: None
        pkts = packetize(PacketKind.DATA, 0, 1, 1, 40_960, 4096)
        nic.submit(SendJob(pkts))
        for _ in range(10):
            nic.deliver(_pkt(nbytes=4096))
        engine.run()
        cfg = NicConfig()
        bus_bytes = 20 * (4096 + cfg.header_bytes)
        min_time = bus_bytes / cfg.host_dma_bandwidth_Bps
        assert engine.now >= min_time


class TestCluster:
    def test_builds_and_wires(self, engine):
        cluster = Cluster(engine, gm_system(), n_nodes=2)
        assert len(cluster) == 2
        assert cluster[0].nic.uplink == cluster.switch.ingress

    def test_too_few_nodes_rejected(self, engine):
        with pytest.raises(ValueError):
            Cluster(engine, gm_system(), n_nodes=1)

    def test_too_many_nodes_rejected(self, engine):
        with pytest.raises(ValueError):
            Cluster(engine, gm_system(), n_nodes=9)

    def test_end_to_end_packet_path(self, engine):
        cluster = Cluster(engine, gm_system(), n_nodes=2)
        got = []
        cluster[1].nic.rx_handler = lambda p: got.append(p)
        pkts = packetize(PacketKind.DATA, 0, 1, 7, 4096, 4096)
        cluster[0].nic.submit(SendJob(pkts))
        engine.run()
        assert len(got) == 1 and got[0].msg_id == 7

    def test_smp_node_has_multiple_cpus(self, engine):
        system = gm_system(cpus_per_node=2)
        cluster = Cluster(engine, system, n_nodes=2)
        assert len(cluster[0].cpus) == 2
        assert cluster[0].cpu is cluster[0].cpus[0]
