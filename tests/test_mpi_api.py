"""Integration tests: the MPI subset's semantics on both transports.

Every test here runs a small two-rank program on a fresh world; most are
parametrized over GM (library-polled) and Portals (offloaded) because the
semantics must be identical even though the mechanics differ completely.
"""

import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, build_world
from repro.mpi.request import RequestKind

KB = 1024


def make(world):
    """Handles + engine for the standard two-rank setup."""
    ctx0 = world.cluster[0].new_context("app0")
    ctx1 = world.cluster[1].new_context("app1")
    return (world.engine, world.endpoint(0).bind(ctx0),
            world.endpoint(1).bind(ctx1))


class TestBlockingExchange:
    @pytest.mark.parametrize("nbytes", [0, 1, 4096, 10 * KB, 100 * KB])
    def test_send_recv_roundtrip(self, either_system, nbytes):
        world = build_world(either_system)
        engine, h0, h1 = make(world)
        done = {}

        def rank0():
            yield from h0.send(1, nbytes, tag=3)
            req = yield from h0.recv(1, nbytes, tag=4)
            done["src"] = req.match_src

        def rank1():
            req = yield from h1.recv(0, nbytes, tag=3)
            assert req.match_src == 0 and req.match_tag == 3
            yield from h1.send(0, nbytes, tag=4)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert done["src"] == 1

    def test_barrier(self, either_system):
        world = build_world(either_system)
        engine, h0, h1 = make(world)
        times = {}

        def rank(h, key, pre_delay):
            yield engine.timeout(pre_delay)
            yield from h.barrier()
            times[key] = engine.now

        p0 = engine.spawn(rank(h0, 0, 0.0))
        p1 = engine.spawn(rank(h1, 1, 0.01))
        engine.run(engine.all_of([p0, p1]))
        # Neither exits the barrier before the slower entered it.
        assert min(times.values()) >= 0.01


class TestNonBlocking:
    def test_isend_returns_pending_request(self, either_system):
        world = build_world(either_system)
        engine, h0, h1 = make(world)
        out = {}

        def rank0():
            req = yield from h0.isend(1, 100 * KB, tag=1)
            out["immediately_done"] = req.done
            yield from h0.wait(req)
            out["finally_done"] = req.done
            assert req.kind is RequestKind.SEND

        def rank1():
            yield from h1.recv(0, 100 * KB, tag=1)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert out == {"immediately_done": False, "finally_done": True}

    def test_test_eventually_true(self, either_system):
        world = build_world(either_system)
        engine, h0, h1 = make(world)
        polls = {"count": 0}

        def rank0():
            req = yield from h0.irecv(1, 10 * KB, tag=2)
            flag = yield from h0.test(req)
            while not flag:
                polls["count"] += 1
                yield engine.timeout(50e-6)
                flag = yield from h0.test(req)

        def rank1():
            yield from h1.send(0, 10 * KB, tag=2)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert polls["count"] > 0  # it was not instant

    def test_waitany_returns_first_index(self, either_system):
        world = build_world(either_system)
        engine, h0, h1 = make(world)
        out = {}

        def rank0():
            r_slow = yield from h0.irecv(1, 100 * KB, tag=1)
            r_fast = yield from h0.irecv(1, 1 * KB, tag=2)
            idx = yield from h0.waitany([r_slow, r_fast])
            out["idx"] = idx
            yield from h0.waitall([r_slow, r_fast])

        def rank1():
            yield from h1.send(0, 1 * KB, tag=2)   # fast one first
            yield from h1.send(0, 100 * KB, tag=1)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert out["idx"] == 1

    def test_testsome_lists_all_completed(self, either_system):
        world = build_world(either_system)
        engine, h0, h1 = make(world)
        out = {}

        def rank0():
            reqs = []
            for tag in (1, 2, 3):
                r = yield from h0.irecv(1, 4 * KB, tag=tag)
                reqs.append(r)
            yield from h0.waitall(reqs)
            done = yield from h0.testsome(reqs)
            out["done"] = done

        def rank1():
            for tag in (1, 2, 3):
                yield from h1.send(0, 4 * KB, tag=tag)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert out["done"] == [0, 1, 2]


class TestMatchingSemantics:
    def test_tag_selectivity(self, either_system):
        world = build_world(either_system)
        engine, h0, h1 = make(world)
        order = []

        def rank0():
            r9 = yield from h0.irecv(1, 4 * KB, tag=9)
            r5 = yield from h0.irecv(1, 4 * KB, tag=5)
            yield from h0.wait(r5)
            order.append(("r5", r9.done))
            yield from h0.wait(r9)

        def rank1():
            yield from h1.send(0, 4 * KB, tag=5)
            yield from h1.send(0, 4 * KB, tag=9)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert order[0][0] == "r5"

    def test_wildcard_receive_resolves_source_and_tag(self, either_system):
        world = build_world(either_system)
        engine, h0, h1 = make(world)
        out = {}

        def rank0():
            req = yield from h0.irecv(ANY_SOURCE, 4 * KB, ANY_TAG)
            yield from h0.wait(req)
            out["src"], out["tag"] = req.match_src, req.match_tag

        def rank1():
            yield from h1.send(0, 4 * KB, tag=77)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert out == {"src": 1, "tag": 77}

    def test_unexpected_message_then_late_recv(self, either_system):
        world = build_world(either_system)
        engine, h0, h1 = make(world)
        out = {}

        def rank0():
            # Let the message arrive (and sit unexpected) first.
            yield engine.timeout(0.05)
            req = yield from h0.recv(1, 10 * KB, tag=8)
            out["done_at"] = engine.now

        def rank1():
            yield from h1.send(0, 10 * KB, tag=8)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert out["done_at"] >= 0.05

    def test_unexpected_large_message(self, either_system):
        # Exercises GM's rendezvous-unexpected path and Portals' header-only
        # unexpected (the kernel-driven GET).
        world = build_world(either_system)
        engine, h0, h1 = make(world)
        out = {}

        def rank0():
            yield engine.timeout(0.05)
            yield from h0.recv(1, 200 * KB, tag=8)
            out["t"] = engine.now

        def rank1():
            yield from h1.send(0, 200 * KB, tag=8)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert out["t"] > 0.05

    def test_nonovertaking_same_tag(self, either_system):
        world = build_world(either_system)
        engine, h0, h1 = make(world)
        sizes = [10 * KB, 100 * KB, 1 * KB, 50 * KB]
        got = []

        def rank0():
            reqs = []
            for i, s in enumerate(sizes):
                r = yield from h0.irecv(1, s, tag=1)
                reqs.append((i, r))
            for i, r in reqs:
                yield from h0.wait(r)
                got.append(i)

        def rank1():
            for s in sizes:
                yield from h1.send(0, s, tag=1)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert got == [0, 1, 2, 3]


class TestValidation:
    def test_bad_rank_rejected(self, gm):
        world = build_world(gm)
        engine, h0, _ = make(world)

        def rank0():
            yield from h0.isend(7, 100, tag=0)

        p = engine.spawn(rank0())
        with pytest.raises(ValueError):
            engine.run(p)

    def test_world_lookup(self, gm):
        world = build_world(gm)
        assert world.size == 2
        assert world.endpoint(1).rank == 1
