"""SIM002 fixture: off-contract float accumulation in replay loops.

Lives at ``repro/hardware/nic.py`` so the rule's burst-module scoping
applies, exactly as it does to the real burst replay.
"""


def replay_chain(sizes, setup_s, bw_Bps, start_at):
    t = start_at
    total = 0
    for nbytes in sizes:
        done = t + (setup_s + nbytes / bw_Bps)
        t += setup_s + nbytes / bw_Bps  # expect: SIM002
        total += 1
    return t, total, done


def drain_window(window_s, step_s):
    clock = 0.0
    while clock < window_s:
        clock = clock + step_s  # expect: SIM002
    return clock


def suffixed_accumulator(frags, dma_s):
    busy_s = 0.0
    for _ in frags:
        busy_s += dma_s  # expect: SIM002
    return busy_s
