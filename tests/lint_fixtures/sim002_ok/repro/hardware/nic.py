"""SIM002 clean counterpart: the sanctioned round-trip arithmetic."""


def replay_chain(sizes, setup_s, bw_Bps, start_at):
    t = start_at
    busy = 0.0
    n_done = 0
    for nbytes in sizes:
        start = t if busy <= t else busy
        done = start + (setup_s + nbytes / bw_Bps)
        busy = done
        t = t + (done - t)
        n_done += 1
    return t, n_done


def augmented_round_trip(arrivals, start_at):
    w = start_at
    for done in arrivals:
        w += done - w
    return w


def rebind_not_accumulate(sizes, setup_s):
    last = 0.0
    for _ in sizes:
        last = setup_s
    return last
