"""Worker-reachable code with state threaded through arguments, plus the
sanctioned context-stack idiom (bracketed mutation, exempt by decorator)."""

from contextlib import contextmanager

_active = []


def note_progress(task, log):
    with use_scope(task):
        log.append(task.name)
    return tally(log)


def tally(log):
    return len(log)


@contextmanager
def use_scope(obs):
    _active.append(obs)
    try:
        yield obs
    finally:
        _active.pop()
