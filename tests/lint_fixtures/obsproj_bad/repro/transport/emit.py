"""Emitter call sites that drifted from the declared event schemas."""


def send(trace, now_s, node, pkt):
    trace.record(now_s, node, "packet_tx")  # expect: OBS001
    trace.record(now_s, node, "packet_rx", (pkt.kind,))  # expect: OBS001
    trace.record(now_s, node, "packet_tx", (pkt.kind, pkt.msg_id))  # expect: OBS001
    trace.record(now_s, node, "fault_drop", (pkt.msg_id,))
    trace.record(now_s, node, "poll", (1,))
