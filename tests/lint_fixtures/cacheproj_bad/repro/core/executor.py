"""Fixture executor: a cache-key scheme with holes (CACHE001).

Two executor-side defects: ``task_key`` forgot to hash the system
config, and ``_SALT_SOURCES`` does not cover ``config.py`` where
SystemConfig lives (so editing it would not invalidate cached points).
"""

import hashlib
import json
from dataclasses import dataclass

from ..config import SystemConfig
from .polling import ProbeConfig, ProbePoint, run_probe

_METHODS = {
    "probe": (ProbeConfig, run_probe, ProbePoint),
}

_SALT_SOURCES = ("core",)


@dataclass(frozen=True)
class PointTask:
    kind: str
    system: SystemConfig
    cfg: ProbeConfig


def _jsonable(value):
    return value


def task_key(task, salt):
    doc = {
        "schema": 1,
        "salt": salt,
        "kind": task.kind,
        # BUG: task.system is missing from the hashed document.
        "cfg": _jsonable(task.cfg),
    }
    blob = json.dumps(doc, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()
