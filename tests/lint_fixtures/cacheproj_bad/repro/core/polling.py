"""Fixture method config with hash-hostile fields (CACHE001)."""

from dataclasses import dataclass, field
from typing import Any, ClassVar, Set


@dataclass
class ProbeConfig:
    msg_bytes: int = 1024
    #: BUG: sets serialize in arbitrary order — equal configs, different keys.
    tags: Set[int] = field(default_factory=set)
    #: BUG: Any is not canonicalized by the key serializer.
    payload: Any = None
    #: BUG: ClassVars never appear in dataclasses.fields() — this knob is
    #: invisible to the cache key.
    default_depth: ClassVar[int] = 4


@dataclass
class ProbePoint:
    value_s: float = 0.0


def run_probe(system, cfg):
    return ProbePoint()
