"""Emitter call sites that agree with the declared event schemas."""


def send(trace, now_s, node, pkt):
    trace.record(now_s, node, "packet_tx", (pkt.kind, pkt.msg_id, pkt.index))
    trace.record(now_s, node, "poll", (1,))
    trace.record(now_s, node, f"fault_{pkt.kind}", (pkt.msg_id,))


class MultiTracer:
    def __init__(self, sinks):
        self.sinks = sinks

    def record(self, t_s, node, kind, detail):
        for sink in self.sinks:
            sink.record(t_s, node, kind, detail)


class QueueTracer:
    def __init__(self):
        self.events = []

    def record(self, t_s, node, kind, detail):
        self.events.append((t_s, node, kind, detail))

    def on_poll(self, t_s, node, completed):
        self.record(t_s, node, "poll", (completed,))
