"""Mini event-schema registry for the OBS001 clean tree."""

EVENT_SCHEMAS = {
    "packet_tx": ("packet_kind", "msg_id", "packet_index"),
    "poll": ("completed",),
}

WILDCARD_KIND_PREFIXES = ("fault_",)
