"""UNIT004 clean counterpart: relabels carry a real conversion."""


def product_matches_suffix(elapsed_s, bandwidth_Bps):
    moved = elapsed_s * bandwidth_Bps
    total_bytes = moved
    return total_bytes


def division_matches_suffix(chunk_bytes, bandwidth_Bps):
    took = chunk_bytes / bandwidth_Bps
    xfer_s = took
    return xfer_s


def annotated_rebind(elapsed_s, tick_hz):
    window_iters = elapsed_s * tick_hz  # unit: count
    return window_iters


def same_family_rebind(poll_interval_s):
    wait_s = poll_interval_s
    return wait_s
