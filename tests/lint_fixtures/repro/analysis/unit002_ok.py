"""Fixture: dimensionally clean arithmetic (UNIT002 clean)."""

USEC = 1e-6


def budget(window_s, slack_us, pad_s):
    total_s = window_s + slack_us * USEC
    padded_s = window_s + pad_s
    zeroed_s = window_s + 0  # additive identity: any unit, allowed
    scaled_s = window_s * 3  # scaling is dimension-preserving
    return total_s, padded_s, zeroed_s, scaled_s
