"""UNIT004 fixture: dimension laundering through relabeling assignments.

A value whose dimension is inferred lands in a binding whose suffix
declares a different family — the name now lies about the quantity.
"""


def launder_through_temporary(elapsed_s):
    raw = elapsed_s
    total_bytes = raw  # expect: UNIT004
    return total_bytes


def launder_directly(delay_s):
    window_iters = delay_s  # expect: UNIT004
    return window_iters


def launder_helper_result(raw):
    from repro.sim.units import usec

    wait = usec(raw)
    n_pkts = wait  # expect: UNIT004
    return n_pkts


def launder_product(elapsed_s, bandwidth_Bps):
    moved = elapsed_s * bandwidth_Bps
    budget_s = moved  # expect: UNIT004
    return budget_s
