"""UNIT003 fixture: mixed inferred dimensions reach adds/compares.

Every violation here is invisible to the suffix rules UNIT001/UNIT002:
the offending operand is an unsuffixed temporary whose dimension is only
known through dataflow.
"""


def mix_through_temporary(msg_bytes, poll_interval_s):
    slack = poll_interval_s
    return msg_bytes + slack  # expect: UNIT003


def compare_through_temporary(limit_bytes, elapsed_s):
    used = elapsed_s
    if limit_bytes < used:  # expect: UNIT003
        return 0
    return 1


def mix_across_branches(flag, wire_gap_s, idle_s, pkt_bytes):
    if flag:
        budget = wire_gap_s
    else:
        budget = idle_s
    return pkt_bytes - budget  # expect: UNIT003


def helper_seeded(raw, chunk_bytes):
    from repro.sim.units import usec

    window = usec(raw)
    return chunk_bytes + window  # expect: UNIT003
