"""Fixture: additive arithmetic across units (UNIT002)."""


def budget(window_s, slack_us, msg_bytes):
    total = window_s + slack_us  # expect: UNIT002 (_s + _us)
    weird = window_s - msg_bytes  # expect: UNIT002 (_s - _bytes)
    padded = window_s + 3  # expect: UNIT002 (_s + bare literal)
    return total, weird, padded
