"""Fixture: quantity names without unit suffixes (UNIT001)."""

from dataclasses import dataclass


@dataclass
class ProbeConfig:
    timeout: float = 0.5  # expect: UNIT001 (dataclass field)
    size: int = 1024  # expect: UNIT001 (dataclass field)


def summarize(points, interval):  # expect: UNIT001 (parameter)
    delay = 0.0  # expect: UNIT001 (assignment)
    for latency in points:  # expect: UNIT001 (for target)
        delay += latency  # expect: UNIT001 (augmented assignment)
    t_total = delay  # expect: UNIT001 (t_ temporary)
    return t_total
