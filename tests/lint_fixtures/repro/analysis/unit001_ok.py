"""Fixture: unit-suffixed quantity names (UNIT001 clean)."""

from dataclasses import dataclass


@dataclass
class ProbeConfig:
    timeout_s: float = 0.5
    size_bytes: int = 1024
    poll_interval_iters: int = 10_000


def summarize(points, interval_iters):
    delay_s = 0.0
    for latency_s in points:
        delay_s += latency_s
    t_total_s = delay_s
    # Plurals are containers of values, not quantities themselves.
    sizes = [p for p in points]
    return t_total_s, sizes
