"""UNIT003 clean counterpart: dimensions converted before combining."""


def converted_before_add(msg_bytes, poll_interval_s, bandwidth_Bps):
    slack_bytes = poll_interval_s * bandwidth_Bps
    return msg_bytes + slack_bytes


def same_dimension_flow(total_s, poll_interval_s):
    spent = poll_interval_s
    return total_s - spent


def ratio_is_dimensionless(work_s, window_s, n_iters):
    fraction = work_s / window_s
    return fraction + n_iters / max(n_iters, 1)


def unknown_stays_silent(a, b):
    c = a
    return b + c
