"""Fixture: stable ordering keys; id() only in __repr__ (DET004 clean)."""


class Packet:
    def __init__(self, seqno, flow_label):
        self.seqno = seqno
        self.flow_label = flow_label

    def route_key(self):
        return (self.flow_label, self.seqno)

    def __repr__(self):
        return f"<Packet {self.seqno} at {id(self):#x}>"
