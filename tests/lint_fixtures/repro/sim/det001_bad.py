"""Fixture: every known wall-clock source, each a DET001 violation."""

import time
from datetime import date, datetime
from time import perf_counter as tick


def stamp_event(payload):
    started = time.time()  # expect: DET001
    mono = tick()  # expect: DET001
    day = date.today()  # expect: DET001
    stamp = datetime.now()  # expect: DET001
    return payload, started, mono, day, stamp
