"""DET005 clean counterpart: sorted() launders before every sink."""

import hashlib
import json
from typing import Set


def key_from_set(parts):
    chosen = set(parts)
    ordered = sorted(chosen)
    return json.dumps(ordered)


def digest_union(members):
    pending = members | {"root"}
    blob = ",".join(sorted(pending))
    return hashlib.sha256(blob.encode()).hexdigest()


def typed_param(pending: Set[str]):
    return ",".join(sorted(pending))


def ordered_all_along(rows):
    names = [r.name for r in rows]
    return json.dumps(names)
