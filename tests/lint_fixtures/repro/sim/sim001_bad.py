"""Fixture: host I/O inside an engine hot path (SIM001)."""

import subprocess
import time
from pathlib import Path


def progress_loop(state):
    time.sleep(0.01)  # expect: SIM001
    log = open("/tmp/sim.log", "a")  # expect: SIM001
    print("polling", state)  # expect: SIM001
    subprocess.run(["sync"])  # expect: SIM001
    Path("/tmp/x").write_text("state")  # expect: SIM001
    return log
