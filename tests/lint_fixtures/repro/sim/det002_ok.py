"""Fixture: named-substream RNG discipline — no DET002 violations."""

import numpy as np


def jittered_cost(rng_registry, base_s, seed):
    stream = rng_registry.stream("nic.jitter")
    wobble = stream.normal(0.0, 1e-7)
    seeded = np.random.default_rng(seed)
    return base_s + wobble, seeded
