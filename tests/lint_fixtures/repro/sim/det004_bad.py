"""Fixture: per-process hash()/id() in simulation logic (DET004)."""


def route_key(packet):
    bucket = hash(packet.flow_label) % 8  # expect: DET004
    tiebreak = id(packet)  # expect: DET004
    return bucket, tiebreak
