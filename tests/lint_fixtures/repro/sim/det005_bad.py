"""DET005 fixture: unordered values flow into order-sensitive sinks.

Every flow here passes through a temporary, so DET003's syntactic
set-iteration check cannot see it.
"""

import hashlib
import json
from typing import Set


def key_from_set(parts):
    chosen = set(parts)
    return json.dumps(chosen)  # expect: DET005


def digest_union(members, extras):
    pending = members | {"root"}
    blob = ",".join(pending)  # expect: DET005
    return hashlib.sha256(blob.encode()).hexdigest(), extras


def hash_view_difference(current, stale):
    gone = current.keys() - stale.keys()
    return json.dumps(tuple(gone))  # expect: DET005


def typed_param(pending: Set[str]):
    return ",".join(pending)  # expect: DET005
