"""Fixture: inline and file-wide suppressions.

The file-wide directive waives DET004 everywhere; the inline directive
waives exactly one DET001 hit.  The second time.time() call is NOT
suppressed and must still be reported.
"""

# comb-lint: disable-file=DET004

import time


def measure(packet):
    t0_s = time.time()  # comb-lint: disable=DET001
    t1_s = time.time()  # NOT suppressed: DET001
    bucket = hash(packet)  # waived by the file-wide DET004 directive
    return t1_s - t0_s, bucket
