"""Fixture: hot path that only touches simulation state (SIM001 clean)."""


def progress_loop(engine, state, trace):
    if trace is not None:
        trace.record(engine.now, "device", "poll", (state,))
    yield engine.timeout(4e-7)
