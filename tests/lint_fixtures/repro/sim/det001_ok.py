"""Fixture: virtual-clock timing — no DET001 violations."""


def stamp_event(engine, payload):
    started_s = engine.now
    timer = engine.timeout(1e-6)
    return payload, started_s, timer
