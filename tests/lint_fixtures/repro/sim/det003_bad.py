"""Fixture: hash-order set iteration, each a DET003 violation."""


def drain(queues):
    ready = {q for q in queues if q}
    for q in ready:  # expect: DET003 (name bound to a set comp)
        q.flush()
    for tag in {1, 5, 9}:  # expect: DET003 (set literal)
        print_tag = tag
    order = list(set(queues))  # expect: DET003 (list(set(...)))
    pairs = [(a, a) for a in frozenset(queues)]  # expect: DET003
    return order, pairs, print_tag
