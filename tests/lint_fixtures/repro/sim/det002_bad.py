"""Fixture: process-global entropy sources, each a DET002 violation."""

import os
import random
import uuid

import numpy as np


def jittered_cost(base_s):
    wobble = random.gauss(0.0, 1e-7)  # expect: DET002
    token = uuid.uuid4()  # expect: DET002
    salt = os.urandom(8)  # expect: DET002
    gen = np.random.default_rng()  # expect: DET002 (unseeded)
    extra = np.random.random()  # expect: DET002 (global stream)
    return base_s + wobble, token, salt, gen, extra
