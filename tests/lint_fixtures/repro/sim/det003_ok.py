"""Fixture: sorted set consumption — no DET003 violations."""


def drain(queues):
    ready = {q for q in queues if q}
    for q in sorted(ready):
        q.flush()
    n_ready = len(ready)
    biggest = max(ready) if ready else None
    order = sorted(set(queues))
    return order, n_ready, biggest
