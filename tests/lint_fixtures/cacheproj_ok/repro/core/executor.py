"""Fixture executor with a sound cache-key scheme (CACHE001 clean)."""

import hashlib
import json
from dataclasses import dataclass

from ..config import SystemConfig
from .polling import ProbeConfig, ProbePoint, run_probe

_METHODS = {
    "probe": (ProbeConfig, run_probe, ProbePoint),
}

_SALT_SOURCES = ("core", "config.py")


@dataclass(frozen=True)
class PointTask:
    kind: str
    system: SystemConfig
    cfg: ProbeConfig


def _jsonable(value):
    return value


def task_key(task, salt):
    doc = {
        "schema": 1,
        "salt": salt,
        "kind": task.kind,
        "system": _jsonable(task.system),
        "cfg": _jsonable(task.cfg),
    }
    blob = json.dumps(doc, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()
