"""Fixture method config with fully hash-stable fields (CACHE001 clean)."""

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple


class ProbeMode(Enum):
    FAST = "fast"
    SLOW = "slow"


@dataclass
class ProbeConfig:
    msg_bytes: int = 1024
    mode: ProbeMode = ProbeMode.FAST
    tags: Tuple[int, ...] = ()
    weights: List[float] = field(default_factory=list)
    labels: Dict[str, str] = field(default_factory=dict)
    note: Optional[str] = None


@dataclass
class ProbePoint:
    value_s: float = 0.0


def run_probe(system, cfg):
    return ProbePoint()
