"""Fixture system config, covered by the fixture's _SALT_SOURCES."""

from dataclasses import dataclass


@dataclass(frozen=True)
class SystemConfig:
    name: str = "fixture"
    seed: int = 0
