"""Minimal executor exposing the worker-entry idioms EXEC001 reads."""

from functools import partial


def run_polling(world, task):
    from repro.sim.state import note_progress

    note_progress(task)
    return world


_METHODS = {
    "polling": (dict, run_polling, ()),
}


def run_task(task):
    method = _METHODS[task.kind][1]
    return method({}, task)


def _sim_entry(task, check=False):
    return run_task(task)


def launch(tasks, pool):
    fn = partial(_sim_entry, check=True)
    return [pool.apply(fn, (t,)) for t in tasks]
