"""Worker-reachable module state: every mutation here diverges between
the serial path and the spawn-pool path."""

_progress = []
_counts = {}
_total = 0


def note_progress(task):
    _progress.append(task.name)  # expect: EXEC001
    bump_counter()
    record_count(task.name)


def bump_counter():
    global _total
    _total = _total + 1  # expect: EXEC001


def record_count(name):
    _counts[name] = _counts.get(name, 0) + 1  # expect: EXEC001
