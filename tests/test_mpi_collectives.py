"""Tests: collectives over 2–8 node worlds (switch contention included)."""

import pytest

from repro.mpi import build_world
from repro.mpi.collectives import (
    _tree_children,
    _tree_parent,
    allreduce,
    alltoall,
    barrier_all,
    bcast,
    gather,
    reduce,
)

KB = 1024


def run_collective(system, n_nodes, coll, *args, **kwargs):
    """Run ``coll`` on every rank; return (per-rank results, world)."""
    world = build_world(system, n_nodes=n_nodes)
    engine = world.engine
    finish = {}

    def rank_proc(rank):
        ctx = world.cluster[rank].new_context(f"coll.{rank}")
        h = world.endpoint(rank).bind(ctx)
        yield from coll(h, *args, **kwargs)
        finish[rank] = engine.now

    procs = [engine.spawn(rank_proc(r)) for r in range(n_nodes)]
    engine.run(engine.all_of(procs))
    return finish, world


class TestTreeShape:
    @pytest.mark.parametrize("size", [2, 3, 4, 5, 8])
    @pytest.mark.parametrize("root", [0, 1])
    def test_tree_is_spanning(self, size, root):
        root = root % size
        seen = {root}
        frontier = [root]
        while frontier:
            node = frontier.pop()
            for child in _tree_children(node, root, size):
                assert child not in seen, "duplicate delivery"
                seen.add(child)
                frontier.append(child)
        assert seen == set(range(size))

    @pytest.mark.parametrize("size", [2, 4, 7])
    def test_parent_child_consistency(self, size):
        for rank in range(size):
            for child in _tree_children(rank, 0, size):
                assert _tree_parent(child, 0, size) == rank
        assert _tree_parent(0, 0, size) is None


class TestCollectives:
    @pytest.mark.parametrize("n_nodes", [2, 4, 7])
    def test_bcast_completes_everywhere(self, either_system, n_nodes):
        finish, world = run_collective(
            either_system, n_nodes, bcast, 50 * KB, 0
        )
        assert len(finish) == n_nodes
        # Every non-root rank received the payload.
        for rank in range(1, n_nodes):
            assert world.endpoint(rank).device.stats.bytes_recv_done >= 50 * KB

    def test_bcast_nonzero_root(self, gm):
        finish, world = run_collective(gm, 4, bcast, 10 * KB, 2)
        assert world.endpoint(2).device.stats.bytes_recv_done == 0
        assert world.endpoint(0).device.stats.bytes_recv_done >= 10 * KB

    @pytest.mark.parametrize("n_nodes", [2, 4])
    def test_reduce_gathers_contributions(self, either_system, n_nodes):
        finish, world = run_collective(
            either_system, n_nodes, reduce, 20 * KB, 0
        )
        # Root received exactly the tree's inbound contributions.
        root_stats = world.endpoint(0).device.stats
        assert root_stats.bytes_recv_done > 0
        total_recv = sum(
            world.endpoint(r).device.stats.bytes_recv_done
            for r in range(n_nodes)
        )
        assert total_recv == (n_nodes - 1) * 20 * KB

    def test_allreduce_symmetry(self, gm):
        finish, world = run_collective(gm, 4, allreduce, 20 * KB)
        # Everyone ends with the result: all ranks received ≥ one payload.
        for rank in range(1, 4):
            assert world.endpoint(rank).device.stats.bytes_recv_done >= 20 * KB

    def test_gather_root_collects_all(self, either_system):
        finish, world = run_collective(either_system, 5, gather, 8 * KB, 0)
        assert world.endpoint(0).device.stats.bytes_recv_done == 4 * 8 * KB

    @pytest.mark.parametrize("n_nodes", [2, 4, 6])
    def test_alltoall_full_exchange(self, gm, n_nodes):
        finish, world = run_collective(gm, n_nodes, alltoall, 8 * KB)
        for rank in range(n_nodes):
            stats = world.endpoint(rank).device.stats
            assert stats.bytes_recv_done == (n_nodes - 1) * 8 * KB
            assert stats.bytes_send_done == (n_nodes - 1) * 8 * KB

    @pytest.mark.parametrize("n_nodes", [2, 3, 8])
    def test_barrier_synchronizes(self, either_system, n_nodes):
        world = build_world(either_system, n_nodes=n_nodes)
        engine = world.engine
        entered = {}
        left = {}

        def rank_proc(rank, delay):
            ctx = world.cluster[rank].new_context(f"bar.{rank}")
            h = world.endpoint(rank).bind(ctx)
            yield engine.timeout(delay)
            entered[rank] = engine.now
            yield from barrier_all(h)
            left[rank] = engine.now

        procs = [
            engine.spawn(rank_proc(r, r * 0.001)) for r in range(n_nodes)
        ]
        engine.run(engine.all_of(procs))
        assert min(left.values()) >= max(entered.values())

    def test_bcast_scales_logarithmically(self, gm):
        """Binomial tree: 8-way bcast costs ~3 serial hops, not 7."""
        t2, _ = run_collective(gm, 2, bcast, 100 * KB, 0)
        t8, _ = run_collective(gm, 8, bcast, 100 * KB, 0)
        # log2(8)=3 rounds vs 1: within ~4x of the 2-node time, far below
        # the 7x a sequential root-sends-to-all would cost.
        assert max(t8.values()) < 4.5 * max(t2.values())

    def test_alltoall_stresses_switch_ports(self, gm):
        _finish, world = run_collective(gm, 6, alltoall, 32 * KB)
        assert world.cluster.switch.packets_forwarded > 6 * 5 * 8
