"""Tests: configuration presets and helpers."""

import dataclasses

import pytest

from repro.config import (
    CpuConfig,
    PRESETS,
    ProgressModel,
    SystemConfig,
    TransportKind,
    get_system,
    gm_system,
    portals_system,
    tcp_system,
)


class TestPresets:
    def test_gm_semantics(self):
        s = gm_system()
        assert s.transport is TransportKind.GM
        assert s.progress is ProgressModel.LIBRARY_POLLED
        assert s.name == "GM"

    def test_portals_semantics(self):
        s = portals_system()
        assert s.transport is TransportKind.PORTALS
        assert s.progress is ProgressModel.OFFLOADED

    def test_tcp_semantics(self):
        s = tcp_system()
        assert s.transport is TransportKind.TCP

    def test_lookup_case_insensitive(self):
        assert get_system("portals").name == "Portals"
        assert get_system("GM").name == "GM"

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            get_system("quadrics")

    def test_presets_registry(self):
        assert set(PRESETS) == {"GM", "Portals", "TCP"}

    def test_overrides_via_factory(self):
        s = gm_system(seed=42, cpus_per_node=2)
        assert s.seed == 42 and s.cpus_per_node == 2

    def test_replaced_copy(self):
        s = gm_system()
        s2 = s.replaced(name="GM2")
        assert s2.name == "GM2" and s.name == "GM"

    def test_configs_frozen(self):
        s = gm_system()
        with pytest.raises(dataclasses.FrozenInstanceError):
            s.name = "mutated"


class TestDerivedValues:
    def test_work_iter_time(self):
        cpu = CpuConfig()
        # 2 cycles at 500 MHz = 4 ns.
        assert cpu.work_iter_s == pytest.approx(4e-9)

    def test_paper_constants_present(self):
        s = gm_system()
        assert s.gm.eager_threshold_bytes == 16 * 1024
        assert s.gm.eager_isend_s == pytest.approx(45e-6)
        assert s.gm.rndv_isend_s == pytest.approx(5e-6)
        assert s.machine.cpu.freq_hz == pytest.approx(500e6)
        assert s.machine.switch.ports == 8

    def test_portals_protocol_constants(self):
        p = portals_system().portals
        assert p.rndv_threshold_bytes == 16 * 1024
        assert p.tx_window_pkts >= 1
        assert p.isend_trap_s > 10e-6  # kernel traps are expensive

    def test_tcp_never_uses_long_protocol(self):
        assert tcp_system().tcp.rndv_threshold_bytes > 1 << 40
