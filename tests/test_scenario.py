"""Tests: the declarative scenario runner."""

import json

import pytest

from repro.scenario import (
    ScenarioError,
    apply_overrides,
    format_scenario_results,
    resolve_preset,
    run_scenario,
)


class TestPresetResolution:
    def test_core_presets(self):
        assert resolve_preset("gm").name == "GM"
        assert resolve_preset("Portals").name == "Portals"

    def test_extension_presets(self):
        assert resolve_preset("EMP").name == "EMP"
        assert resolve_preset("OffloadNIC").name == "OffloadNIC"

    def test_unknown_preset(self):
        with pytest.raises(ScenarioError, match="unknown preset"):
            resolve_preset("Elan4")


class TestOverrides:
    def test_nested_dotted_path(self, portals):
        out = apply_overrides(portals, {"portals.tx_window_pkts": 9})
        assert out.portals.tx_window_pkts == 9
        assert portals.portals.tx_window_pkts != 9  # original untouched

    def test_deeper_path(self, gm):
        out = apply_overrides(
            gm, {"machine.nic.host_dma_bandwidth_Bps": 50e6}
        )
        assert out.machine.nic.host_dma_bandwidth_Bps == 50e6

    def test_unknown_field_rejected(self, gm):
        with pytest.raises(ScenarioError, match="no field"):
            apply_overrides(gm, {"machine.nic.warp_速度": 1})

    def test_type_mismatch_rejected(self, gm):
        with pytest.raises(ScenarioError, match="expected"):
            apply_overrides(gm, {"machine.nic.mtu_bytes": "huge"})

    def test_int_for_float_allowed(self, gm):
        out = apply_overrides(gm, {"machine.cpu.timeslice_s": 1})
        assert out.machine.cpu.timeslice_s == 1


class TestRunScenario:
    SPEC = {
        "name": "unit",
        "systems": [
            {"preset": "GM"},
            {"preset": "Portals", "label": "P/w8",
             "overrides": {"portals.tx_window_pkts": 8}},
        ],
        "experiments": [
            {"kind": "polling", "msg_kb": 50, "intervals": [2000],
             "config": {"measure_s": 0.015, "warmup_s": 0.003}},
            {"kind": "offload", "msg_kb": 100},
            {"kind": "pingpong", "sizes_kb": [10]},
        ],
    }

    def test_runs_and_structures_results(self):
        results = run_scenario(self.SPEC)
        assert results["name"] == "unit"
        assert [e["label"] for e in results["systems"]] == ["GM", "P/w8"]
        gm_entry = results["systems"][0]
        kinds = [e["kind"] for e in gm_entry["experiments"]]
        assert kinds == ["polling", "offload", "pingpong"]
        assert gm_entry["experiments"][1]["offloaded"] is False
        assert results["systems"][1]["experiments"][1]["offloaded"] is True

    def test_results_json_serializable(self):
        blob = json.dumps(run_scenario(self.SPEC))
        assert "polling" in blob

    def test_format_renders_everything(self):
        text = format_scenario_results(run_scenario(self.SPEC))
        assert "GM" in text and "P/w8" in text
        assert "offload" in text and "pingpong" in text

    def test_file_input(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(self.SPEC))
        results = run_scenario(path)
        assert results["name"] == "unit"

    def test_missing_sections_rejected(self):
        with pytest.raises(ScenarioError):
            run_scenario({"systems": []})

    def test_unknown_kind_rejected(self):
        spec = dict(self.SPEC)
        spec["experiments"] = [{"kind": "quantum"}]
        with pytest.raises(ScenarioError, match="unknown experiment kind"):
            run_scenario(spec)

    def test_netperf_kind(self):
        spec = {
            "name": "n",
            "systems": [{"preset": "GM"}],
            "experiments": [{"kind": "netperf", "mode": "busywait"}],
        }
        results = run_scenario(spec)
        exp = results["systems"][0]["experiments"][0]
        assert exp["availability"] == pytest.approx(0.5, abs=0.05)

    def test_cli_scenario(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "s.json"
        spec_path.write_text(json.dumps({
            "name": "cli",
            "systems": [{"preset": "GM"}],
            "experiments": [
                {"kind": "polling", "msg_kb": 50, "intervals": [2000],
                 "config": {"measure_s": 0.015, "warmup_s": 0.003}},
            ],
        }))
        out_path = tmp_path / "out.json"
        rc = main(["scenario", str(spec_path), "--out", str(out_path)])
        assert rc == 0
        assert out_path.exists()
        assert "cli" in capsys.readouterr().out
