"""Hypothesis property battery for the pattern layer.

Pure-geometry properties run at full example counts; the sim-backed
properties (which execute a real N-rank world per example) cap their
example budget explicitly so the battery stays fast under the ``ci``
profile too.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import gm_system, portals_system
from repro.mpi.collectives import allreduce_msgs, allreduce_rd_msgs
from repro.patterns import (
    PatternConfig,
    balanced_grid,
    grid_neighbors,
    halo_pairs,
    run_pattern,
)
from repro.patterns.allreduce import expected_allreduce_msgs
from repro.patterns.config import grid_coords, grid_rank

KB = 1024

#: Example budget for properties that simulate a whole world per example.
SIM = settings(max_examples=10, deadline=None,
               suppress_health_check=[HealthCheck.too_slow])

#: Small grids: every axis 1..3, at least 2 and at most 6 ranks total.
small_shapes = st.lists(st.integers(1, 3), min_size=1, max_size=3).map(
    tuple
).filter(lambda s: 2 <= math.prod(s) <= 6)

#: Larger abstract grids for the pure-geometry properties.
shapes = st.lists(st.integers(1, 4), min_size=1, max_size=4).map(tuple)


def _sim_cfg(**kw):
    """A deliberately tiny measurement: 1 warmup + 2 measured iterations."""
    return PatternConfig(msg_bytes=4 * KB, work_interval_iters=5_000,
                         iterations=2, warmup_iterations=1, **kw)


class TestGeometry:
    @given(ranks=st.integers(1, 256), dims=st.integers(1, 4))
    def test_balanced_grid_partitions_ranks(self, ranks, dims):
        shape = balanced_grid(ranks, dims)
        assert len(shape) == dims
        assert math.prod(shape) == ranks
        assert list(shape) == sorted(shape, reverse=True)

    @given(shape=shapes, data=st.data())
    def test_coords_rank_roundtrip(self, shape, data):
        rank = data.draw(st.integers(0, math.prod(shape) - 1))
        assert grid_rank(grid_coords(rank, shape), shape) == rank

    @given(shape=shapes)
    def test_neighbor_relation_is_symmetric(self, shape):
        nbrs = {r: grid_neighbors(r, shape)
                for r in range(math.prod(shape))}
        for r, peers in nbrs.items():
            assert peers == sorted(peers)
            assert r not in peers
            for p in peers:
                assert r in nbrs[p]

    @given(shape=shapes)
    def test_handshake_lemma_pins_halo_pairs(self, shape):
        # Every neighbour pair contributes two directed edges, so the
        # degree sum over all ranks is exactly twice halo_pairs(shape).
        degree_sum = sum(
            len(grid_neighbors(r, shape)) for r in range(math.prod(shape))
        )
        assert degree_sum == 2 * halo_pairs(shape)

    @given(n=st.integers(2, 1024))
    def test_allreduce_analytic_counts(self, n):
        assert expected_allreduce_msgs("binomial", n) == allreduce_msgs(n)
        assert expected_allreduce_msgs("rd", n) == allreduce_rd_msgs(n)
        assert allreduce_msgs(n) == 2 * (n - 1)
        pow2 = 1 << (n.bit_length() - 1)
        rem = n - pow2
        assert allreduce_rd_msgs(n) == \
            2 * rem + pow2 * int(math.log2(pow2))
        if rem == 0:
            # Power of two: pure recursive doubling, n log2 n messages.
            assert allreduce_rd_msgs(n) == n * int(math.log2(n))


class TestSimulatedCounts:
    @SIM
    @given(shape=small_shapes)
    def test_halo_sends_one_message_per_pair_per_iteration(self, shape):
        cfg = _sim_cfg(pattern="halo2d", ranks=math.prod(shape),
                       grid=shape)
        pt = run_pattern(gm_system(), cfg)
        assert pt.msgs == cfg.iterations * 2 * halo_pairs(shape)
        assert all(0.0 < a <= 1.0 for a in pt.availability_per_rank)

    @SIM
    @given(ranks=st.integers(2, 7),
           algorithm=st.sampled_from(["binomial", "rd"]),
           portals=st.booleans())
    def test_allreduce_matches_analytic_count(self, ranks, algorithm,
                                              portals):
        system = portals_system() if portals else gm_system()
        cfg = _sim_cfg(pattern="allreduce", ranks=ranks,
                       algorithm=algorithm)
        pt = run_pattern(system, cfg)
        assert pt.msgs == \
            cfg.iterations * expected_allreduce_msgs(algorithm, ranks)
        assert all(0.0 < a <= 1.0 for a in pt.availability_per_rank)

    @SIM
    @given(shape=small_shapes)
    def test_sweep_availability_is_valid_fraction(self, shape):
        cfg = _sim_cfg(pattern="sweep", ranks=math.prod(shape),
                       grid=shape)
        pt = run_pattern(gm_system(), cfg)
        assert all(0.0 < a <= 1.0 for a in pt.availability_per_rank)
        assert pt.availability_min <= pt.availability
        assert pt.availability <= pt.availability_max


class TestAttributionConservation:
    @SIM
    @given(ranks=st.integers(2, 5),
           pattern=st.sampled_from(["halo2d", "allreduce"]))
    def test_causes_sum_to_attributed_total(self, ranks, pattern):
        from repro.obs import Observer, attribute_events, use_observer

        cfg = _sim_cfg(pattern=pattern, ranks=ranks)
        observer = Observer()
        with use_observer(observer):
            run_pattern(gm_system(), cfg)
        points = [
            pt for pt in attribute_events(observer.tracer.events())
            if pt.method == "pattern"
        ]
        assert len(points) == 1
        pt = points[0]
        # One measured window per rank per iteration, none dropped.
        assert pt.windows == ranks * cfg.iterations
        assert pt.total_s >= 0.0
        assert sum(pt.causes.values()) == pytest.approx(pt.total_s,
                                                        rel=1e-9, abs=1e-15)
        assert all(v >= 0.0 for v in pt.causes.values())
