"""Unit + property tests: packetization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.transport.packets import (
    Envelope,
    PacketKind,
    control_packet,
    next_msg_id,
    packetize,
)


class TestPacketize:
    def test_exact_multiple(self):
        pkts = packetize(PacketKind.DATA, 0, 1, 1, 8192, 4096)
        assert [p.payload_bytes for p in pkts] == [4096, 4096]

    def test_remainder_on_last(self):
        pkts = packetize(PacketKind.DATA, 0, 1, 1, 5000, 4096)
        assert [p.payload_bytes for p in pkts] == [4096, 904]

    def test_zero_byte_message_single_packet(self):
        pkts = packetize(PacketKind.DATA, 0, 1, 1, 0, 4096)
        assert len(pkts) == 1
        assert pkts[0].is_first and pkts[0].is_last
        assert pkts[0].payload_bytes == 0

    def test_flags_and_indices(self):
        pkts = packetize(PacketKind.DATA, 0, 1, 1, 10_000, 4096)
        assert pkts[0].is_first and not pkts[0].is_last
        assert pkts[-1].is_last and not pkts[-1].is_first
        assert [p.index for p in pkts] == [0, 1, 2]

    def test_envelope_only_on_first(self):
        env = Envelope(0, 1, 5, 10_000)
        pkts = packetize(PacketKind.DATA, 0, 1, 1, 10_000, 4096, envelope=env)
        assert pkts[0].envelope is env
        assert all(p.envelope is None for p in pkts[1:])

    def test_meta_copied_per_packet(self):
        meta = {"proto": "x"}
        pkts = packetize(PacketKind.DATA, 0, 1, 1, 8192, 4096, meta=meta)
        pkts[0].meta["proto"] = "mutated"
        assert pkts[1].meta["proto"] == "x"

    def test_validation(self):
        with pytest.raises(ValueError):
            packetize(PacketKind.DATA, 0, 1, 1, -1, 4096)
        with pytest.raises(ValueError):
            packetize(PacketKind.DATA, 0, 1, 1, 100, 0)

    def test_wire_bytes_includes_header(self):
        pkts = packetize(PacketKind.DATA, 0, 1, 1, 100, 4096)
        assert pkts[0].wire_bytes(16) == 116

    @settings(max_examples=100, deadline=None)
    @given(
        nbytes=st.integers(min_value=0, max_value=1_000_000),
        mtu=st.integers(min_value=1, max_value=9000),
    )
    def test_reassembly_invariants(self, nbytes, mtu):
        pkts = packetize(PacketKind.DATA, 0, 1, 1, nbytes, mtu)
        assert sum(p.payload_bytes for p in pkts) == nbytes
        assert pkts[0].is_first and pkts[-1].is_last
        assert sum(1 for p in pkts if p.is_first) == 1
        assert sum(1 for p in pkts if p.is_last) == 1
        assert [p.index for p in pkts] == list(range(len(pkts)))
        assert all(p.payload_bytes <= mtu for p in pkts)
        # All fragments except the last are full.
        assert all(p.payload_bytes == mtu for p in pkts[:-1])


class TestControlPacket:
    def test_zero_payload(self):
        pkt = control_packet(PacketKind.RTS, 0, 1, 9)
        assert pkt.payload_bytes == 0
        assert pkt.is_first and pkt.is_last

    def test_meta_defensive_copy(self):
        meta = {"credits": 2}
        pkt = control_packet(PacketKind.ACK, 0, 1, 9, meta=meta)
        meta["credits"] = 99
        assert pkt.meta["credits"] == 2


class TestMsgIds:
    def test_monotonic_unique(self):
        ids = [next_msg_id() for _ in range(100)]
        assert len(set(ids)) == 100
        assert ids == sorted(ids)
