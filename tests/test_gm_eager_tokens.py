"""Tests: MPICH/GM eager-token flow control (bounce-buffer limits)."""

import dataclasses

import pytest

from repro.config import gm_system
from repro.mpi import build_world

KB = 1024


def make(world):
    ctx0 = world.cluster[0].new_context("app0")
    ctx1 = world.cluster[1].new_context("app1")
    return (world.engine, world.endpoint(0).bind(ctx0),
            world.endpoint(1).bind(ctx1))


def tiny_token_system(tokens=3, batch=1):
    base = gm_system()
    return dataclasses.replace(
        base, gm=dataclasses.replace(
            base.gm, eager_tokens=tokens, eager_token_batch=batch
        ),
    )


class TestEagerTokens:
    def test_flood_without_receives_throttles(self):
        """With no receives posted, only `eager_tokens` messages leave the
        sender; the rest wait in the library backlog."""
        system = tiny_token_system(tokens=3)
        world = build_world(system)
        engine, h0, h1 = make(world)

        def sender():
            for i in range(10):
                yield from h1.isend(0, 2 * KB, tag=i)
            yield engine.timeout(0.05)  # long silence, receiver posts nothing

        def receiver():
            yield engine.timeout(0.05)

        p = engine.spawn(sender())
        engine.spawn(receiver())
        engine.run(p)
        # At most 3 messages crossed the wire (plus nothing else).
        assert world.cluster[0].nic.rx_packets <= 3
        dev = h1.device
        assert sum(len(q) for q in dev._eager_backlog.values()) == 7

    def test_tokens_return_and_backlog_drains(self):
        """Once the receiver consumes messages, tokens flow back and the
        backlog drains — every message is eventually delivered."""
        system = tiny_token_system(tokens=3, batch=1)
        world = build_world(system)
        engine, h0, h1 = make(world)
        n = 10

        def sender():
            reqs = []
            for i in range(n):
                r = yield from h1.isend(0, 2 * KB, tag=i)
                reqs.append(r)
            yield from h1.waitall(reqs)

        def receiver():
            reqs = []
            for i in range(n):
                r = yield from h0.irecv(1, 2 * KB, tag=i)
                reqs.append(r)
            yield from h0.waitall(reqs)

        p0 = engine.spawn(receiver())
        p1 = engine.spawn(sender())
        engine.run(engine.all_of([p0, p1]))
        assert h0.device.stats.msgs_recv_done == n

    def test_token_conservation(self):
        """After everything drains, each peer's token count is restored to
        the configured maximum minus unreturned batch remainders."""
        system = tiny_token_system(tokens=3, batch=1)
        world = build_world(system)
        engine, h0, h1 = make(world)

        def sender():
            reqs = []
            for i in range(6):
                r = yield from h1.isend(0, 2 * KB, tag=i)
                reqs.append(r)
            yield from h1.waitall(reqs)
            # Let the trailing token packets arrive and be processed.
            yield engine.timeout(0.01)
            yield from h1.testsome(reqs)

        def receiver():
            for i in range(6):
                yield from h0.recv(1, 2 * KB, tag=i)

        p0 = engine.spawn(receiver())
        p1 = engine.spawn(sender())
        engine.run(engine.all_of([p0, p1]))
        assert h1.device._eager_tokens[0] == 3
        assert not h1.device._eager_backlog.get(0)

    def test_rendezvous_unaffected_by_tokens(self):
        """Large messages never consume eager tokens."""
        system = tiny_token_system(tokens=1)
        world = build_world(system)
        engine, h0, h1 = make(world)

        def sender():
            reqs = []
            for i in range(4):
                r = yield from h1.isend(0, 100 * KB, tag=i)
                reqs.append(r)
            yield from h1.waitall(reqs)

        def receiver():
            for i in range(4):
                yield from h0.recv(1, 100 * KB, tag=i)

        p0 = engine.spawn(receiver())
        p1 = engine.spawn(sender())
        engine.run(engine.all_of([p0, p1]))
        assert h0.device.stats.msgs_recv_done == 4
        assert h1.device._eager_tokens.get(0, 1) == 1

    def test_default_tokens_do_not_throttle_comb(self):
        """With the default 16 tokens, COMB's queue-depth-4 pipeline never
        hits the limit: no backlog forms during a polling run."""
        from repro.core import PollingConfig, run_polling

        system = gm_system()
        pt = run_polling(system, PollingConfig(
            msg_bytes=10 * KB, poll_interval_iters=1_000,
            measure_s=0.02, warmup_s=0.004,
        ))
        assert pt.bandwidth_Bps > 0
