"""Differential tests: transport matching vs a reference MPI matcher.

Hypothesis generates random message programs (sizes straddling every
protocol boundary, colliding tags, wildcard receives); the full simulated
stack must produce exactly the matching a pure-Python reference of the
MPI specification produces:

    messages from one source are matchable in send order; each message
    matches the earliest-posted compatible receive.

Receives are all posted before any message is sent, so the reference is a
simple greedy assignment — any deviation in the simulator (mis-ordered
admission, wrong wildcard handling, protocol-dependent overtaking) breaks
the equality.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import gm_system, portals_system
from repro.mpi import ANY_SOURCE, ANY_TAG, build_world

KB = 1024

_sizes = st.sampled_from([0, 512, 4 * KB, 10 * KB, 16 * KB, 60 * KB])
_tags = st.integers(min_value=0, max_value=2)


@st.composite
def programs(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    sends = [(draw(_sizes), draw(_tags)) for _ in range(n)]
    # One receive per message; recv[i] is compatible with send tag pattern:
    # either the exact tag of *some* send or a wildcard.
    recvs = []
    for _ in range(n):
        wildcard_src = draw(st.booleans())
        wildcard_tag = draw(st.booleans())
        tag = ANY_TAG if wildcard_tag else draw(_tags)
        recvs.append((ANY_SOURCE if wildcard_src else 1, tag))
    return sends, recvs


def reference_matching(sends, recvs):
    """Greedy MPI reference: message k → earliest-posted compatible,
    unmatched receive.  Returns recv_index -> send_index (or None)."""
    matched = {}
    taken = set()
    for k, (_size, tag) in enumerate(sends):
        for i, (want_src, want_tag) in enumerate(recvs):
            if i in taken:
                continue
            if want_src not in (ANY_SOURCE, 1):
                continue
            if want_tag not in (ANY_TAG, tag):
                continue
            matched[i] = k
            taken.add(i)
            break
    return matched


def run_program(system, sends, recvs):
    """Post all receives, then send everything; return recv msg_ids."""
    world = build_world(system)
    engine = world.engine
    h0 = world.endpoint(0).bind(world.cluster[0].new_context("a"))
    h1 = world.endpoint(1).bind(world.cluster[1].new_context("b"))
    out = {}

    def receiver():
        reqs = []
        for src, tag in recvs:
            # Declared size: the max any message could carry (the declared
            # size does not participate in matching).
            r = yield from h0.irecv(src, 60 * KB, tag)
            reqs.append(r)
        out["reqs"] = reqs
        # Wait only for the receives the reference says will match.
        expected = reference_matching(sends, recvs)
        matchable = [reqs[i] for i in expected]
        if matchable:
            yield from h0.waitall(matchable)

    def sender():
        sreqs = []
        yield engine.timeout(1e-3)  # ensure all receives are posted first
        for size, tag in sends:
            r = yield from h1.isend(0, size, tag)
            sreqs.append(r)
        # Only sends the reference says will match can be waited on: an
        # unmatched *rendezvous* send legitimately never completes (its
        # CTS never comes) — waiting on it would deadlock, per MPI.
        matched_sends = set(reference_matching(sends, recvs).values())
        waitable = [sreqs[k] for k in sorted(matched_sends)]
        if waitable:
            yield from h1.waitall(waitable)
        out["send_ids"] = [r.msg_id for r in sreqs]

    p0 = engine.spawn(receiver())
    p1 = engine.spawn(sender())
    engine.run(engine.all_of([p0, p1]))
    return out


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(prog=programs(), system_name=st.sampled_from(["GM", "Portals"]))
def test_matching_equals_reference(prog, system_name):
    sends, recvs = prog
    system = gm_system() if system_name == "GM" else portals_system()
    expected = reference_matching(sends, recvs)
    out = run_program(system, sends, recvs)
    send_ids = out["send_ids"]
    reqs = out["reqs"]
    for i, req in enumerate(reqs):
        if i in expected:
            k = expected[i]
            assert req.done, f"recv {i} should have matched send {k}"
            assert req.msg_id == send_ids[k], (
                f"recv {i} matched message {req.msg_id}, reference says "
                f"send {k} (= {send_ids[k]})"
            )
            assert req.match_tag == sends[k][1]
        else:
            assert not req.done, f"recv {i} should have stayed unmatched"
