"""Tests: go-back-N reliability — state machines and loss injection.

The kernel transports' reliability module is exercised two ways: the pure
state machines directly (exhaustively, including via hypothesis), and the
full stack with packets actually dropped on the wire.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import FaultConfig, portals_system
from repro.mpi import build_world
from repro.os.driver import GoBackNRx, GoBackNTx

KB = 1024


class TestGoBackNTx:
    def test_window_admission(self):
        tx = GoBackNTx(window=2)
        assert tx.can_send
        assert tx.register("a") == 0
        assert tx.register("b") == 1
        assert not tx.can_send
        with pytest.raises(RuntimeError):
            tx.register("c")

    def test_cumulative_ack_slides_window(self):
        tx = GoBackNTx(window=3)
        for p in "abc":
            tx.register(p)
        released, retrans = tx.on_ack(1)   # acks seqs 0 and 1
        assert released == 2 and retrans == []
        assert tx.base == 2 and tx.can_send

    def test_stale_ack_is_duplicate(self):
        tx = GoBackNTx(window=3, dup_ack_threshold=2)
        for p in "abc":
            tx.register(p)
        tx.on_ack(0)
        released, retrans = tx.on_ack(0)   # first duplicate
        assert released == 0 and retrans == []
        released, retrans = tx.on_ack(0)   # second: fast retransmit
        assert retrans == ["b", "c"]
        assert tx.retransmissions == 1

    def test_timeout_retransmits_window(self):
        tx = GoBackNTx(window=4)
        for p in "abcd":
            tx.register(p)
        tx.on_ack(0)
        assert tx.on_timeout() == ["b", "c", "d"]

    def test_timeout_with_nothing_unacked(self):
        tx = GoBackNTx(window=2)
        assert tx.on_timeout() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            GoBackNTx(window=0)


class TestGoBackNRx:
    def test_in_order_delivery_and_ack_cadence(self):
        rx = GoBackNRx(ack_every=2)
        d0 = rx.on_data(0)
        assert d0.deliver and not d0.send_ack
        d1 = rx.on_data(1)
        assert d1.deliver and d1.send_ack and d1.cum == 1

    def test_force_ack_on_message_end(self):
        rx = GoBackNRx(ack_every=4)
        d = rx.on_data(0, force_ack=True)
        assert d.send_ack and d.cum == 0

    def test_gap_drops_and_reacks(self):
        rx = GoBackNRx(ack_every=2)
        rx.on_data(0)
        d = rx.on_data(2)                  # seq 1 lost
        assert not d.deliver and d.send_ack and d.cum == 0
        assert d.kind == "gap"

    def test_duplicate_reack(self):
        rx = GoBackNRx(ack_every=2)
        rx.on_data(0)
        d = rx.on_data(0)
        assert not d.deliver and d.send_ack and d.cum == 0
        assert d.kind == "duplicate"

    def test_validation(self):
        with pytest.raises(ValueError):
            GoBackNRx(ack_every=0)

    @settings(max_examples=60, deadline=None)
    @given(
        rnd=st.randoms(use_true_random=False),
        loss=st.floats(min_value=0.0, max_value=0.6),
        window=st.integers(min_value=1, max_value=4),
        ack_every=st.integers(min_value=1, max_value=6),
    )
    def test_lossy_channel_eventually_delivers_everything(
        self, rnd, loss, window, ack_every
    ):
        """Round-based tx↔rx over a channel dropping data packets with
        probability ``loss``: every sequence is delivered exactly once,
        in order, with no livelock."""
        tx = GoBackNTx(window=window)
        rx = GoBackNRx(ack_every=ack_every)
        total = 20
        delivered = []
        next_to_send = 0
        channel = []  # payload == its sequence number
        for _round in range(5000):
            while next_to_send < total and tx.can_send:
                channel.append(tx.register(next_to_send))
                next_to_send += 1
            if not channel:
                if next_to_send == total and not tx.has_unacked:
                    break
                channel.extend(tx.on_timeout())  # retransmission timer
            acks = []
            for seq in channel:
                if rnd.random() < loss:
                    continue
                dec = rx.on_data(seq, force_ack=(seq == total - 1))
                if dec.deliver:
                    delivered.append(seq)
                if dec.send_ack:
                    acks.append(dec.cum)
            channel = []
            for cum in acks:  # acks ride the protected channel
                _released, retransmit = tx.on_ack(cum)
                channel.extend(retransmit)
        assert delivered == list(range(total))
        assert not tx.has_unacked


class TestLossInjection:
    def _lossy(self, rate, seed=0):
        base = portals_system(seed=seed)
        machine = dataclasses.replace(
            base.machine, fault=FaultConfig(data_loss_rate=rate)
        )
        return dataclasses.replace(base, machine=machine)

    def _transfer(self, system, nbytes=200 * KB):
        world = build_world(system)
        engine = world.engine
        h0 = world.endpoint(0).bind(world.cluster[0].new_context("a"))
        h1 = world.endpoint(1).bind(world.cluster[1].new_context("b"))

        def rank0():
            yield from h0.recv(1, nbytes, tag=1)
            return engine.now

        def rank1():
            yield from h1.send(0, nbytes, tag=1)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        return engine.run(p0), world

    def test_transfer_completes_under_loss(self):
        t, world = self._transfer(self._lossy(0.05))
        dropped = sum(
            link.packets_dropped for link in world.cluster.switch._out.values()
        )
        assert dropped > 0, "the fault injector should have dropped packets"
        assert world.endpoint(0).device.stats.bytes_recv_done == 200 * KB

    def test_heavy_loss_still_completes(self):
        t, world = self._transfer(self._lossy(0.25), nbytes=100 * KB)
        assert world.endpoint(0).device.stats.bytes_recv_done == 100 * KB
        # The sender's reliability layer actually retransmitted.
        tx_flows = world.endpoint(1).device._gbn_tx
        assert any(f.retransmissions > 0 for f in tx_flows.values())

    def test_loss_slows_transfers(self):
        clean, _ = self._transfer(self._lossy(0.0))
        lossy, _ = self._transfer(self._lossy(0.10))
        assert lossy > clean

    def test_lossy_runs_deterministic_per_seed(self):
        a, _ = self._transfer(self._lossy(0.10, seed=7))
        b, _ = self._transfer(self._lossy(0.10, seed=7))
        assert a == b

    def test_different_seeds_differ(self):
        a, _ = self._transfer(self._lossy(0.10, seed=1))
        b, _ = self._transfer(self._lossy(0.10, seed=2))
        assert a != b

    def test_bidirectional_lossy_pingpong(self):
        system = self._lossy(0.08)
        world = build_world(system)
        engine = world.engine
        h0 = world.endpoint(0).bind(world.cluster[0].new_context("a"))
        h1 = world.endpoint(1).bind(world.cluster[1].new_context("b"))

        def rank0():
            for i in range(5):
                yield from h0.send(1, 30 * KB, tag=i)
                yield from h0.recv(1, 30 * KB, tag=100 + i)

        def rank1():
            for i in range(5):
                yield from h1.recv(0, 30 * KB, tag=i)
                yield from h1.send(0, 30 * KB, tag=100 + i)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert world.endpoint(0).device.stats.msgs_recv_done == 5

    def test_loss_rate_validation(self):
        from repro.hardware.link import Link
        from repro.sim import Engine

        link = Link(Engine(), 1e6, 0.0, 0)
        with pytest.raises(ValueError):
            link.set_loss(1.5, None)
