"""Tests: the post-work-wait method driver (COMB §2.2)."""

import pytest

from repro.core.pww import PwwConfig, run_pww, run_pww_batches

KB = 1024

FAST = dict(batches=6, warmup_batches=2)


class TestValidation:
    def test_negative_work_rejected(self, gm):
        with pytest.raises(ValueError):
            run_pww(gm, PwwConfig(work_interval_iters=-1))

    def test_bad_batch_params_rejected(self, gm):
        with pytest.raises(ValueError):
            run_pww(gm, PwwConfig(batch_msgs=0))
        with pytest.raises(ValueError):
            run_pww(gm, PwwConfig(batches=0))
        with pytest.raises(ValueError):
            run_pww(gm, PwwConfig(test_at_frac=1.5))


class TestPhases:
    def test_phase_durations_positive_and_sum(self, either_system):
        pt = run_pww(either_system, PwwConfig(
            msg_bytes=100 * KB, work_interval_iters=100_000, **FAST,
        ))
        assert pt.post_s > 0
        assert pt.work_s > 0
        assert pt.wait_s >= 0
        cycle = pt.post_s + pt.work_s + pt.wait_s
        assert cycle * pt.batches == pytest.approx(pt.elapsed_s, rel=1e-6)

    def test_work_never_shorter_than_dry(self, either_system):
        pt = run_pww(either_system, PwwConfig(
            msg_bytes=100 * KB, work_interval_iters=200_000, **FAST,
        ))
        assert pt.work_s >= pt.work_dry_s - 1e-12

    def test_gm_work_exactly_dry(self, gm):
        """Fig 13: GM steals no cycles during the (blocked) work phase."""
        pt = run_pww(gm, PwwConfig(
            msg_bytes=100 * KB, work_interval_iters=200_000, **FAST,
        ))
        assert pt.work_s == pytest.approx(pt.work_dry_s)
        assert pt.overhead_s == pytest.approx(0.0, abs=1e-9)

    def test_portals_work_stretched(self, portals):
        """Fig 12: interrupts stretch the Portals work phase."""
        pt = run_pww(portals, PwwConfig(
            msg_bytes=100 * KB, work_interval_iters=200_000, **FAST,
        ))
        assert pt.overhead_s > 300e-6

    def test_zero_work_interval(self, either_system):
        pt = run_pww(either_system, PwwConfig(
            msg_bytes=100 * KB, work_interval_iters=0, **FAST,
        ))
        assert pt.work_dry_s == 0.0
        assert pt.bandwidth_Bps > 0

    def test_batch_records_available(self, gm):
        batches = run_pww_batches(gm, PwwConfig(
            msg_bytes=100 * KB, work_interval_iters=100_000, **FAST,
        ))
        assert len(batches) == FAST["batches"]
        assert all(b.post_s > 0 for b in batches)


class TestOffloadSignature:
    def test_gm_wait_constant_with_work(self, gm):
        """Fig 11: GM's wait does not shrink as work grows — no offload."""
        short = run_pww(gm, PwwConfig(
            msg_bytes=100 * KB, work_interval_iters=10_000, **FAST,
        ))
        long = run_pww(gm, PwwConfig(
            msg_bytes=100 * KB, work_interval_iters=5_000_000, **FAST,
        ))
        assert long.wait_s == pytest.approx(short.wait_s, rel=0.15)
        assert long.wait_s > 1e-3

    def test_portals_wait_drains_with_work(self, portals):
        """Fig 11: Portals completes messaging inside a long work phase."""
        short = run_pww(portals, PwwConfig(
            msg_bytes=100 * KB, work_interval_iters=10_000, **FAST,
        ))
        long = run_pww(portals, PwwConfig(
            msg_bytes=100 * KB, work_interval_iters=5_000_000, **FAST,
        ))
        assert short.wait_s > 1e-3
        assert long.wait_s < 1e-4

    def test_post_cost_ranking(self, gm, portals):
        """Fig 10: Portals posts (kernel traps) cost far more than GM's."""
        g = run_pww(gm, PwwConfig(
            msg_bytes=100 * KB, work_interval_iters=100_000, **FAST,
        ))
        p = run_pww(portals, PwwConfig(
            msg_bytes=100 * KB, work_interval_iters=100_000, **FAST,
        ))
        assert p.post_s > 5 * g.post_s


class TestVariants:
    def test_single_test_restores_gm_overlap(self, gm):
        """Fig 17: one MPI_Test early in the work phase lets GM launch the
        rendezvous transfer, collapsing the wait at long work intervals."""
        plain = run_pww(gm, PwwConfig(
            msg_bytes=100 * KB, work_interval_iters=5_000_000, **FAST,
        ))
        tested = run_pww(gm, PwwConfig(
            msg_bytes=100 * KB, work_interval_iters=5_000_000,
            tests_in_work=1, **FAST,
        ))
        assert tested.wait_s < 0.3 * plain.wait_s
        assert tested.bandwidth_Bps > plain.bandwidth_Bps

    def test_test_variant_noop_for_offloaded(self, portals):
        """For Portals the inserted test changes nothing material."""
        plain = run_pww(portals, PwwConfig(
            msg_bytes=100 * KB, work_interval_iters=5_000_000, **FAST,
        ))
        tested = run_pww(portals, PwwConfig(
            msg_bytes=100 * KB, work_interval_iters=5_000_000,
            tests_in_work=1, **FAST,
        ))
        assert tested.wait_s == pytest.approx(plain.wait_s, abs=100e-6)

    def test_interleaved_batches_variant(self, gm):
        """§4.3's legacy formulation keeps multiple batches in flight and
        (for GM) sustains more bandwidth at the same work interval."""
        plain = run_pww(gm, PwwConfig(
            msg_bytes=100 * KB, work_interval_iters=500_000, **FAST,
        ))
        interleaved = run_pww(gm, PwwConfig(
            msg_bytes=100 * KB, work_interval_iters=500_000, interleave=3,
            **FAST,
        ))
        assert interleaved.bandwidth_Bps > plain.bandwidth_Bps

    def test_multi_message_batches(self, either_system):
        pt = run_pww(either_system, PwwConfig(
            msg_bytes=50 * KB, work_interval_iters=100_000, batch_msgs=3,
            **FAST,
        ))
        assert pt.batch_msgs == 3
        assert pt.post_per_msg_s == pytest.approx(pt.post_s / 6)


class TestDeterminism:
    def test_identical_runs_identical_results(self, gm):
        cfg = PwwConfig(msg_bytes=100 * KB, work_interval_iters=123_456,
                        **FAST)
        assert run_pww(gm, cfg).to_dict() == run_pww(gm, cfg).to_dict()
