"""Tests: knee detection and the pipeline knee model."""

import pytest

from repro.analysis.knees import (
    Knee,
    find_knee_iters,
    format_knees,
    measure_knee,
)
from repro.core.polling import PollingConfig
from repro.core.results import PollingPoint, Series

KB = 1024


def _series(points):
    s = Series("x")
    for interval, bw in points:
        s.points.append(PollingPoint(
            system="S", msg_bytes=1, poll_interval_iters=interval,
            availability=0.5, bandwidth_Bps=bw, elapsed_s=1.0,
            iters=1, polls=1, msgs=1,
        ))
    return s


class TestFindKnee:
    def test_locates_half_plateau_crossing(self):
        s = _series([(10, 100.0), (100, 100.0), (1000, 100.0),
                     (10_000, 25.0)])
        knee = find_knee_iters(s)
        assert 1000 < knee < 10_000

    def test_interpolation_is_logarithmic(self):
        # Crossing exactly halfway (in log-x) between 1e3 and 1e5.
        s = _series([(10, 100.0), (100, 100.0), (1_000, 75.0),
                     (100_000, 25.0)])
        knee = find_knee_iters(s)
        assert knee == pytest.approx(10_000, rel=0.01)

    def test_no_collapse_returns_none(self):
        s = _series([(10, 100.0), (100, 99.0), (1000, 98.0)])
        assert find_knee_iters(s) is None

    def test_short_series_returns_none(self):
        assert find_knee_iters(_series([(10, 1.0), (100, 0.1)])) is None


class TestKneeModel:
    @pytest.mark.parametrize("factory_name", ["GM", "Portals"])
    def test_measured_knee_matches_pipeline_model(self, factory_name,
                                                  gm, portals):
        system = gm if factory_name == "GM" else portals
        knee = measure_knee(system, 100 * KB, per_decade=2)
        # The model explains the knee within a small constant factor.
        assert 0.4 <= knee.ratio <= 2.5, knee

    def test_knees_ordered_by_size(self, portals):
        small = measure_knee(portals, 10 * KB, per_decade=2)
        large = measure_knee(portals, 300 * KB, per_decade=2)
        assert small.measured_iters < large.measured_iters

    def test_format_table(self, gm):
        knee = Knee("GM", 100 * KB, 4, 88e6, 2.4e6, 2.3e6)
        text = format_knees([knee])
        assert "GM" in text and "ratio" in text
