"""Critical-path attribution (`repro.obs.attribution`).

The load-bearing assertions here are the PR's acceptance criteria: per
sweep point, cause seconds sum to the measured wait time exactly, and on
the GM stack with large messages the dominant cause is the rendezvous
progress stall — the paper's §4 explanation, measured.
"""

import math

import pytest

from repro.config import gm_system, portals_system
from repro.core.executor import PointTask, SweepExecutor
from repro.core.polling import PollingConfig
from repro.core.pww import PwwConfig, run_pww
from repro.obs import (
    Observer,
    attribute_events,
    attribute_window,
    format_attribution,
    stitch,
    use_observer,
)
from repro.obs.attribution import (
    ALL_CAUSES,
    CAUSE_HOST_COPY,
    CAUSE_OTHER,
    CAUSE_POLL,
    CAUSE_RENDEZVOUS,
    CAUSE_WIRE,
)


def _traced_tasks(tasks):
    obs = Observer()
    with use_observer(obs):
        with SweepExecutor(jobs=1, cache=None) as ex:
            points = ex.run(tasks)
    return points, obs.events()


@pytest.fixture(scope="module")
def gm_large():
    """One GM PWW point, 100 KB messages, long work phase (paper Fig 11)."""
    points, events = _traced_tasks([
        PointTask("pww", gm_system(),
                  PwwConfig(msg_bytes=100 * 1024,
                            work_interval_iters=1_000_000)),
    ])
    return points[0], attribute_events(events)


def test_causes_sum_to_measured_wait(gm_large):
    """Acceptance: the decomposition sums to the measured wait time."""
    point, atts = gm_large
    (att,) = atts
    cfg_batches = PwwConfig().batches
    assert att.windows == cfg_batches
    measured_total = point.wait_s * cfg_batches
    assert math.isclose(att.total_s, measured_total, rel_tol=1e-9)
    assert math.isclose(sum(att.causes.values()), att.total_s, rel_tol=1e-9)


def test_gm_large_dominated_by_rendezvous_stall(gm_large):
    """Acceptance: GM + large messages → rendezvous progress stall (§4)."""
    _, atts = gm_large
    (att,) = atts
    assert att.dominant == CAUSE_RENDEZVOUS
    assert att.fractions()[CAUSE_RENDEZVOUS] > 0.5


def test_fractions_sum_to_one(gm_large):
    _, atts = gm_large
    (att,) = atts
    assert math.isclose(sum(att.fractions().values()), 1.0, rel_tol=1e-9)


def test_point_metadata_from_markers(gm_large):
    _, atts = gm_large
    (att,) = atts
    assert att.method == "pww"
    assert att.system == "GM"
    assert att.msg_bytes == 100 * 1024
    assert att.interval_iters == 1_000_000


def test_portals_not_blamed_on_rendezvous():
    """Portals' (small) waits are wire time, not Progress-Rule fallout."""
    _, events = _traced_tasks([
        PointTask("pww", portals_system(),
                  PwwConfig(msg_bytes=100 * 1024,
                            work_interval_iters=100_000)),
    ])
    (att,) = attribute_events(events)
    if att.total_s > 0:
        assert att.fractions().get(CAUSE_WIRE, 0.0) > \
            att.fractions().get(CAUSE_RENDEZVOUS, 0.0)


def test_gm_eager_waits_are_host_copy():
    """Sub-threshold messages skip the handshake; their completion delay
    is the bounce-buffer copy on the host CPU."""
    _, events = _traced_tasks([
        PointTask("pww", gm_system(),
                  PwwConfig(msg_bytes=8, work_interval_iters=1_000_000)),
    ])
    (att,) = attribute_events(events)
    assert att.total_s > 0
    assert att.dominant == CAUSE_HOST_COPY


def test_polling_loss_decomposition():
    _, events = _traced_tasks([
        PointTask("polling", gm_system(),
                  PollingConfig(msg_bytes=100 * 1024,
                                poll_interval_iters=10_000)),
    ])
    (att,) = attribute_events(events)
    assert att.method == "polling"
    assert att.total_s > 0
    assert math.isclose(sum(att.causes.values()), att.total_s, rel_tol=1e-9)
    assert att.causes[CAUSE_POLL] > 0


def test_multi_point_segmentation():
    """Executor markers cut one merged stream into per-point records, in
    task order, warmup excluded per point."""
    tasks = [
        PointTask("pww", gm_system(),
                  PwwConfig(msg_bytes=100 * 1024,
                            work_interval_iters=100_000)),
        PointTask("polling", gm_system(),
                  PollingConfig(msg_bytes=100 * 1024,
                                poll_interval_iters=10_000)),
        PointTask("pww", portals_system(),
                  PwwConfig(msg_bytes=100 * 1024,
                            work_interval_iters=100_000)),
    ]
    _, events = _traced_tasks(tasks)
    atts = attribute_events(events)
    assert [a.method for a in atts] == ["pww", "polling", "pww"]
    assert [a.system for a in atts] == ["GM", "GM", "Portals"]


def test_markerless_stream_single_point():
    obs = Observer()
    with use_observer(obs):
        point = run_pww(gm_system(), PwwConfig(
            msg_bytes=100 * 1024, work_interval_iters=1_000_000
        ))
    (att,) = attribute_events(obs.events())
    assert att.method == "pww"
    assert att.system is None  # no marker, no metadata
    # Without markers every batch (warmup included) is decomposed.
    cfg = PwwConfig()
    assert att.windows == cfg.batches + cfg.warmup_batches
    assert att.total_s > point.wait_s * cfg.batches


def test_attribute_window_empty_and_degenerate():
    forest = stitch([])
    causes = attribute_window(forest, 0.0, 1.0)
    assert causes[CAUSE_OTHER] == 1.0
    assert sum(causes.values()) == 1.0
    assert set(causes) == set(ALL_CAUSES)
    assert sum(attribute_window(forest, 1.0, 1.0).values()) == 0.0
    assert sum(attribute_window(forest, 2.0, 1.0).values()) == 0.0


def test_empty_stream_attributes_nothing():
    assert attribute_events([]) == []


def test_truncated_point_still_attributed():
    """A stream cut off before ``point_end`` (ring eviction, crash) still
    yields the open point's decomposition."""
    _, events = _traced_tasks([
        PointTask("pww", gm_system(),
                  PwwConfig(msg_bytes=100 * 1024,
                            work_interval_iters=100_000)),
    ])
    truncated = [ev for ev in events if ev.kind != "point_end"]
    (att,) = attribute_events(truncated)
    assert att.method == "pww"
    assert att.system == "GM"
    assert att.total_s > 0


def test_marker_only_stream_yields_nothing():
    """Markers around a cache-hit point (no simulation events) produce a
    zero point, and a markerless stream with no phase events none at all."""
    from repro.obs.tracer import ObsEvent

    events = [
        ObsEvent(0, 0.0, "executor", "point_start",
                 ("pww", "GM", 1024, 1000, 3)),
        ObsEvent(1, 0.0, "executor", "point_end", ("pww",)),
    ]
    (att,) = attribute_events(events)
    assert att.total_s == 0.0
    assert att.windows == 0
    assert att.fractions() == {}
    assert att.dominant is None
    no_phase = [ObsEvent(0, 0.0, "mpi.req", "req_post",
                         (1, "send", 1, 11, 64))]
    assert attribute_events(no_phase) == []


def test_format_attribution_table(gm_large):
    _, atts = gm_large
    text = format_attribution(atts)
    assert "rendezvous_stall" in text
    assert "pww" in text
    assert "GM" in text
    assert format_attribution([]).startswith("attribution: no")


def test_to_dict_roundtrip(gm_large):
    _, atts = gm_large
    doc = atts[0].to_dict()
    assert doc["dominant"] == CAUSE_RENDEZVOUS
    assert math.isclose(sum(doc["causes"].values()), doc["total_s"],
                        rel_tol=1e-9)
