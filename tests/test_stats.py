"""Unit tests for ``repro.stats`` (moments, bootstrap, stopping, replicate)."""

import dataclasses
import math

import pytest

from repro.config import gm_system, portals_system
from repro.stats import (
    DEFAULT_MIN_REPS,
    STATS_SEED,
    STOP_CI_WIDTH,
    STOP_FIXED,
    STOP_MAX_REPS,
    Disagreement,
    REPLICATION_SCHEMA_VERSION,
    StoppingRule,
    StreamingMoments,
    bootstrap_ci,
    find_disagreements,
    interval_width,
    is_stochastic,
    replicate_seed,
    replicate_system,
    replication_interval,
    sample_median,
    summarize_replicates,
)


# ------------------------------------------------------------------ moments
def test_moments_empty():
    m = StreamingMoments()
    assert m.n == 0
    assert m.variance == 0.0
    assert m.std == 0.0
    assert m.to_dict() == {"n": 0, "mean": 0.0, "std": 0.0,
                           "min": 0.0, "max": 0.0}


def test_moments_matches_batch_statistics():
    values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
    m = StreamingMoments().extend(values)
    assert m.n == len(values)
    assert m.mean == pytest.approx(5.0)
    # Sample variance (n-1 denominator) of this classic set is 32/7.
    assert m.variance == pytest.approx(32.0 / 7.0)
    assert m.std == pytest.approx(math.sqrt(32.0 / 7.0))
    assert (m.min_value, m.max_value) == (2.0, 9.0)


def test_moments_single_sample_has_zero_variance():
    m = StreamingMoments()
    m.push(3.5)
    assert m.n == 1
    assert m.variance == 0.0
    assert m.to_dict()["mean"] == 3.5


def test_moments_merge_equals_sequential():
    a_vals = [1.0, 2.0, 3.0]
    b_vals = [10.0, 20.0, 30.0, 40.0]
    merged = StreamingMoments().extend(a_vals).merge(
        StreamingMoments().extend(b_vals))
    direct = StreamingMoments().extend(a_vals + b_vals)
    assert merged.n == direct.n
    assert merged.mean == pytest.approx(direct.mean)
    assert merged.variance == pytest.approx(direct.variance)
    assert merged.min_value == direct.min_value
    assert merged.max_value == direct.max_value


def test_moments_merge_with_empty_sides():
    filled = StreamingMoments().extend([1.0, 2.0])
    assert StreamingMoments().merge(filled).to_dict() == filled.to_dict()
    assert filled.merge(StreamingMoments()).to_dict() == filled.to_dict()


# ---------------------------------------------------------------- bootstrap
def test_sample_median_midpoint():
    assert sample_median([1.0, 2.0, 10.0, 4.0]) == 3.0
    assert sample_median([7.0]) == 7.0


def test_sample_median_empty_raises():
    with pytest.raises(ValueError):
        sample_median([])


def test_bootstrap_ci_constant_samples_zero_width():
    lo, hi = bootstrap_ci([2.5, 2.5, 2.5])
    assert (lo, hi) == (2.5, 2.5)
    # Singletons are constant samples too.
    assert bootstrap_ci([9.0]) == (9.0, 9.0)


def test_bootstrap_ci_brackets_median():
    values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]
    lo, hi = bootstrap_ci(values)
    assert lo <= sample_median(values) <= hi
    assert lo < hi


def test_bootstrap_ci_seeded_reproducible():
    values = [0.1, 0.9, 0.4, 0.7, 0.2, 0.6]
    assert bootstrap_ci(values) == bootstrap_ci(values)
    assert bootstrap_ci(values, seed=STATS_SEED) == bootstrap_ci(values)


def test_bootstrap_ci_validation():
    with pytest.raises(ValueError):
        bootstrap_ci([])
    with pytest.raises(ValueError):
        bootstrap_ci([1.0, 2.0], confidence=0.0)
    with pytest.raises(ValueError):
        bootstrap_ci([1.0, 2.0], confidence=1.0)
    with pytest.raises(ValueError):
        bootstrap_ci([1.0, 2.0], resamples=0)


def test_interval_width():
    assert interval_width([3.0, 3.0, 3.0]) == 0.0
    assert interval_width([1.0, 2.0, 3.0, 4.0, 5.0]) > 0.0


# ----------------------------------------------------------------- stopping
def test_stopping_fixed_design():
    rule = StoppingRule(max_reps=4)
    assert rule.initial_reps == 4
    assert rule.decide([1.0, 1.0, 1.0]) is None
    assert rule.decide([1.0, 1.0, 1.0, 1.0]) == STOP_FIXED


def test_stopping_adaptive_stops_on_narrow_ci():
    rule = StoppingRule(max_reps=10, ci_width=0.5)
    assert rule.initial_reps == DEFAULT_MIN_REPS
    # Deterministic replicates: zero-width CI at min_reps.
    assert rule.decide([2.0, 2.0, 2.0]) == STOP_CI_WIDTH
    # Too few samples: no decision yet regardless of spread.
    assert rule.decide([2.0, 2.0]) is None


def test_stopping_adaptive_hits_cap():
    rule = StoppingRule(max_reps=4, ci_width=1e-12)
    noisy = [0.0, 10.0, 5.0, 7.0]
    assert rule.decide(noisy[:3]) is None
    assert rule.decide(noisy) == STOP_MAX_REPS


def test_stopping_initial_reps_clamped_to_cap():
    assert StoppingRule(max_reps=2, ci_width=0.1).initial_reps == 2


def test_stopping_validation():
    with pytest.raises(ValueError):
        StoppingRule(max_reps=0)
    with pytest.raises(ValueError):
        StoppingRule(max_reps=3, min_reps=1)
    with pytest.raises(ValueError):
        StoppingRule(max_reps=3, ci_width=-0.1)


# ---------------------------------------------------------------- replicate
def test_replicate_seed_identity_at_zero():
    assert replicate_seed(0, 0) == 0
    assert replicate_seed(12345, 0) == 12345


def test_replicate_seed_distinct_substreams():
    seeds = {replicate_seed(0, r) for r in range(64)}
    assert len(seeds) == 64
    # Stable derivation: same (root, index) -> same seed.
    assert replicate_seed(7, 3) == replicate_seed(7, 3)
    # Different roots get different substreams.
    assert replicate_seed(7, 3) != replicate_seed(8, 3)


def test_replicate_seed_negative_raises():
    with pytest.raises(ValueError):
        replicate_seed(0, -1)


def test_replicate_system_only_changes_seed():
    system = portals_system()
    rep0 = replicate_system(system, 0)
    assert rep0 is system
    rep2 = replicate_system(system, 2)
    assert rep2.seed == replicate_seed(system.seed, 2)
    assert dataclasses.replace(rep2, seed=system.seed) == system


def test_is_stochastic_gate():
    system = gm_system()
    assert not is_stochastic(system)
    fault = dataclasses.replace(system.machine.fault, data_loss_rate=0.01)
    machine = dataclasses.replace(system.machine, fault=fault)
    assert is_stochastic(dataclasses.replace(system, machine=machine))


def test_find_disagreements_clean():
    doc = {"availability": 0.5, "msgs": 10, "label": "x"}
    assert find_disagreements([doc, dict(doc), dict(doc)]) == []
    assert find_disagreements([]) == []
    assert find_disagreements([doc]) == []


def test_find_disagreements_flags_divergent_fields():
    base = {"availability": 0.5, "msgs": 10}
    twin = {"availability": 0.5, "msgs": 10}
    bad = {"availability": 0.75, "msgs": 10}
    out = find_disagreements([base, twin, bad])
    assert out == [(2, ("availability",))]


def test_find_disagreements_missing_keys_both_directions():
    out = find_disagreements([{"a": 1, "b": 2}, {"a": 1, "c": 3}])
    assert out == [(1, ("b", "c"))]


def test_disagreement_detail_mentions_determinism_bug():
    d = Disagreement(kind="polling", system="GM", replicate_index=2,
                     fields=("availability",))
    assert "determinism bug" in d.detail
    assert "replicate 2" in d.detail
    assert "polling/GM" in d.detail


def test_summarize_replicates_shape():
    docs = [
        {"availability": 0.5, "msgs": 10, "label": "x", "ranks": [1, 2]},
        {"availability": 0.7, "msgs": 10, "label": "x", "ranks": [1, 2]},
        {"availability": 0.6, "msgs": 10, "label": "x", "ranks": [1, 2]},
    ]
    summary = summarize_replicates(docs, STOP_FIXED, disagreements=0)
    assert summary["schema"] == REPLICATION_SCHEMA_VERSION
    assert summary["reps"] == 3
    assert summary["stopping_reason"] == STOP_FIXED
    assert summary["disagreements"] == 0
    # Scalars summarized; strings and lists skipped.
    assert sorted(summary["metrics"]) == ["availability", "msgs"]
    avail = summary["metrics"]["availability"]
    assert sorted(avail) == ["ci_high", "ci_low", "max", "mean",
                             "median", "min", "n", "std"]
    assert avail["n"] == 3
    assert avail["median"] == 0.6
    assert avail["ci_low"] <= avail["median"] <= avail["ci_high"]
    # Deterministic field: degenerate zero-width interval.
    assert summary["metrics"]["msgs"]["ci_low"] == 10.0
    assert summary["metrics"]["msgs"]["ci_high"] == 10.0


def test_summarize_replicates_skips_inconsistent_fields():
    docs = [{"a": 1.0, "b": 2.0}, {"a": 1.5, "b": "oops"}]
    summary = summarize_replicates(docs, STOP_MAX_REPS)
    assert sorted(summary["metrics"]) == ["a"]


def test_summarize_replicates_empty_raises():
    with pytest.raises(ValueError):
        summarize_replicates([], STOP_FIXED)


def test_replication_interval_lookup():
    summary = summarize_replicates(
        [{"availability": 0.4}, {"availability": 0.6}], STOP_FIXED)
    interval = replication_interval(summary, "availability")
    assert interval is not None
    lo, hi = interval
    assert lo <= 0.5 <= hi
    assert replication_interval(summary, "absent") is None
    assert replication_interval(None, "availability") is None
    assert replication_interval({}, "availability") is None
    assert replication_interval({"metrics": "junk"}, "availability") is None
