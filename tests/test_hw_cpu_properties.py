"""Property-based tests: CPU time conservation under arbitrary schedules.

Hypothesis drives random mixes of compute segments, kernel interrupts and
idle gaps; the invariants must hold regardless:

* ``user + kernel + idle == elapsed`` at every sampled instant;
* every context receives exactly the user time it asked for;
* kernel time equals the sum of submitted kernel costs.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CpuConfig
from repro.hardware.cpu import CPU
from repro.sim import Engine

# Durations in milliseconds to keep float noise tame; converted on use.
_dur = st.integers(min_value=1, max_value=50)
_gap = st.integers(min_value=0, max_value=30)


@st.composite
def schedules(draw):
    n_ctx = draw(st.integers(min_value=1, max_value=3))
    segments = {
        i: draw(st.lists(st.tuples(_gap, _dur), min_size=1, max_size=5))
        for i in range(n_ctx)
    }
    irqs = draw(st.lists(st.tuples(_gap, _dur), min_size=0, max_size=8))
    quantum_ms = draw(st.sampled_from([5, 10, 1000]))
    return segments, irqs, quantum_ms


@settings(max_examples=60, deadline=None)
@given(schedules())
def test_time_conservation(schedule):
    segments, irqs, quantum_ms = schedule
    engine = Engine()
    cpu = CPU(engine, CpuConfig(timeslice_s=quantum_ms / 1e3))
    contexts = {}
    asked = {}

    def proc(i, segs):
        ctx = contexts[i]
        for gap, dur in segs:
            if gap:
                yield engine.timeout(gap / 1e3)
            yield ctx.compute(dur / 1e3)

    for i, segs in segments.items():
        contexts[i] = cpu.new_context(f"ctx{i}")
        asked[i] = sum(d for _g, d in segs) / 1e3
        engine.spawn(proc(i, segs))

    total_irq = 0.0

    def irq_proc():
        nonlocal total_irq
        for gap, dur in irqs:
            yield engine.timeout(gap / 1e3)
            cpu.kernel_work(dur / 1e3)
            total_irq += dur / 1e3

    engine.spawn(irq_proc())
    engine.run()

    snap = cpu.snapshot()
    assert snap["user_s"] + snap["kernel_s"] + snap["idle_s"] == pytest.approx(
        cpu.elapsed(), abs=1e-9
    )
    assert snap["kernel_s"] == pytest.approx(total_irq, abs=1e-9)
    for i, ctx in contexts.items():
        assert ctx.user_time_s == pytest.approx(asked[i], abs=1e-9)
    assert snap["idle_s"] >= -1e-12


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.tuples(_gap, _dur), min_size=1, max_size=6),
    st.integers(min_value=1, max_value=40),
)
def test_wall_time_never_below_user_time(irq_plan, compute_ms):
    """A compute segment's wall duration >= its user duration, exactly
    equal when nothing preempts."""
    engine = Engine()
    cpu = CPU(engine, CpuConfig())
    ctx = cpu.new_context("c")
    out = {}

    def proc():
        t0 = engine.now
        yield ctx.compute(compute_ms / 1e3)
        out["wall"] = engine.now - t0

    def irq_proc():
        for gap, dur in irq_plan:
            yield engine.timeout(gap / 1e3)
            cpu.kernel_work(dur / 1e3)

    engine.spawn(proc())
    engine.spawn(irq_proc())
    engine.run()
    assert out["wall"] >= compute_ms / 1e3 - 1e-12


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=20), min_size=2, max_size=6))
def test_round_robin_is_work_conserving(durations_ms):
    """N simultaneous hogs: the CPU is never idle until the last finishes,
    so the last completion lands exactly at the total work."""
    engine = Engine()
    cpu = CPU(engine, CpuConfig(timeslice_s=0.005))
    finish = []

    def proc(ctx, dur):
        yield ctx.compute(dur)
        finish.append(engine.now)

    for i, ms in enumerate(durations_ms):
        engine.spawn(proc(cpu.new_context(f"c{i}"), ms / 1e3))
    engine.run()
    assert max(finish) == pytest.approx(sum(durations_ms) / 1e3)
    snap = cpu.snapshot()
    assert snap["idle_s"] == pytest.approx(0.0, abs=1e-9)
