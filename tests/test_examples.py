"""Smoke tests: every example script runs to completion.

Examples are deliverables; these tests keep them from rotting.  Each runs
in a subprocess with arguments chosen for speed where the script accepts
any.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"

#: script -> (args, expected substrings in stdout)
CASES = {
    "quickstart.py": ([], ["GM", "Portals", "application offload"]),
    "offload_detection.py": ([], ["White & Bova", "OffloadNIC"]),
    "netperf_pitfall.py": ([], ["netperf", "COMB polling"]),
    "custom_transport.py": ([], ["Portals/msg-irq"]),
    "smp_nodes.py": ([], ["per-CPU availability"]),
    "halo_exchange_app.py": (["--iters", "6", "--work", "500000"],
                             ["blocking", "speedup"]),
    "multinode_collectives.py": (["--size", "30"], ["bcast", "alltoall"]),
    "fanin_scaling.py": ([], ["peers", "aggregate bw"]),
    "timeline_trace.py": ([], ["kernel CPU"]),
    "compare_gm_portals.py": (["--per-decade", "1"], ["fig08", "fig11"]),
    "critical_path.py": ([], ["rendezvous_stall", "span tree",
                              "dominant cause: rendezvous_stall"]),
    "reproduce_paper.py": (["--quick", "--ids", "fig13"],
                           ["fig13", "regenerated 1 figures"]),
}


@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs(script):
    args, expected = CASES[script]
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    for needle in expected:
        assert needle in proc.stdout, (
            f"{script}: {needle!r} missing from output"
        )
