"""Unit tests: GM transport specifics (OS-bypass, library-polled progress).

These pin the behaviours §4 of the paper attributes to MPICH/GM: the
eager/rendezvous split with its asymmetric send cost, zero interrupts, and
— crucially — *no progress without library calls*.
"""

import pytest

from repro.config import gm_system
from repro.mpi import build_world
from repro.transport.gm import GmDevice

KB = 1024


def make(world):
    ctx0 = world.cluster[0].new_context("app0")
    ctx1 = world.cluster[1].new_context("app1")
    return (world.engine, ctx0,
            world.endpoint(0).bind(ctx0), world.endpoint(1).bind(ctx1))


class TestSendCosts:
    @pytest.mark.parametrize(
        "nbytes,expected_attr",
        [(10 * KB, "eager_isend_s"), (100 * KB, "rndv_isend_s")],
    )
    def test_isend_host_cost_matches_protocol(self, gm, nbytes, expected_attr):
        """§4.2: ~45 µs per eager send vs ~5 µs for rendezvous."""
        world = build_world(gm)
        engine, ctx0, h0, _h1 = make(world)
        out = {}

        def rank0():
            u0 = ctx0.cpu.context_time(ctx0)
            yield from h0.isend(1, nbytes, tag=1)
            out["cost"] = ctx0.cpu.context_time(ctx0) - u0

        p = engine.spawn(rank0())
        engine.run(p)
        assert out["cost"] == pytest.approx(getattr(gm.gm, expected_attr))

    def test_threshold_boundary(self, gm):
        """Exactly-at-threshold messages take the rendezvous path."""
        world = build_world(gm)
        engine, ctx0, h0, _ = make(world)
        out = {}

        def rank0():
            u0 = ctx0.cpu.context_time(ctx0)
            yield from h0.isend(1, gm.gm.eager_threshold_bytes, tag=1)
            out["cost"] = ctx0.cpu.context_time(ctx0) - u0

        engine.run(engine.spawn(rank0()))
        assert out["cost"] == pytest.approx(gm.gm.rndv_isend_s)


class TestNoInterrupts:
    def test_transfers_raise_zero_interrupts(self, gm):
        world = build_world(gm)
        engine, _ctx0, h0, h1 = make(world)

        def rank0():
            yield from h0.send(1, 300 * KB, tag=1)
            yield from h0.recv(1, 300 * KB, tag=2)

        def rank1():
            yield from h1.recv(0, 300 * KB, tag=1)
            yield from h1.send(0, 300 * KB, tag=2)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert world.cluster[0].irq.count == 0
        assert world.cluster[1].irq.count == 0
        assert world.cluster[0].cpu.kernel_time_s == 0.0


class TestProgressRule:
    def test_no_progress_without_library_calls(self, gm):
        """The §4.3 violation: a rendezvous transfer posted on both sides
        makes no progress while neither process calls into MPI."""
        world = build_world(gm)
        engine, _ctx0, h0, h1 = make(world)
        probe = {}

        def rank0():
            rreq = yield from h0.irecv(1, 100 * KB, tag=1)
            sreq = yield from h0.isend(1, 100 * KB, tag=1)
            # Long silence with no MPI calls at all.
            yield engine.timeout(0.05)
            probe["done_during_silence"] = (rreq.done, sreq.done)
            yield from h0.waitall([rreq, sreq])
            probe["done_after_wait"] = (rreq.done, sreq.done)

        def rank1():
            rreq = yield from h1.irecv(0, 100 * KB, tag=1)
            sreq = yield from h1.isend(0, 100 * KB, tag=1)
            yield engine.timeout(0.05)
            yield from h1.waitall([rreq, sreq])

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert probe["done_during_silence"] == (False, False)
        assert probe["done_after_wait"] == (True, True)

    def test_eager_data_arrives_but_completes_at_library_call(self, gm):
        """Eager payloads land in the bounce buffer autonomously, but the
        receive request only completes inside a progress pass."""
        world = build_world(gm)
        engine, _ctx0, h0, h1 = make(world)
        probe = {}

        def rank0():
            rreq = yield from h0.irecv(1, 8 * KB, tag=1)
            yield engine.timeout(0.02)  # silence; data arrives meanwhile
            dev = h0.device
            probe["cq_pending"] = dev.has_work()
            probe["done_before"] = rreq.done
            yield from h0.wait(rreq)
            probe["done_after"] = rreq.done

        def rank1():
            yield from h1.send(0, 8 * KB, tag=1)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert probe == {
            "cq_pending": True, "done_before": False, "done_after": True,
        }


class TestRendezvousHandshake:
    def test_control_packets_emitted(self, gm):
        world = build_world(gm)
        engine, _ctx0, h0, h1 = make(world)

        def rank0():
            yield from h0.send(1, 100 * KB, tag=1)

        def rank1():
            yield from h1.recv(0, 100 * KB, tag=1)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        # One RTS (sender) + one CTS (receiver).
        assert h0.device.stats.ctrl_packets == 1
        assert h1.device.stats.ctrl_packets == 1

    def test_eager_needs_no_control_packets(self, gm):
        world = build_world(gm)
        engine, _ctx0, h0, h1 = make(world)

        def rank0():
            yield from h0.send(1, 4 * KB, tag=1)

        def rank1():
            yield from h1.recv(0, 4 * KB, tag=1)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert h0.device.stats.ctrl_packets == 0
        assert h1.device.stats.ctrl_packets == 0


class TestStats:
    def test_byte_counters(self, gm):
        world = build_world(gm)
        engine, _ctx0, h0, h1 = make(world)

        def rank0():
            yield from h0.send(1, 100 * KB, tag=1)
            yield from h0.recv(1, 10 * KB, tag=2)

        def rank1():
            yield from h1.recv(0, 100 * KB, tag=1)
            yield from h1.send(0, 10 * KB, tag=2)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert h0.device.stats.bytes_send_done == 100 * KB
        assert h0.device.stats.bytes_recv_done == 10 * KB
        assert h0.device.stats.msgs_send_done == 1
        assert h0.device.stats.msgs_recv_done == 1

    def test_progress_pass_counter(self, gm):
        world = build_world(gm)
        engine, _ctx0, h0, h1 = make(world)

        def rank0():
            yield from h0.send(1, 100 * KB, tag=1)

        def rank1():
            yield from h1.recv(0, 100 * KB, tag=1)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert h0.device.stats.progress_passes > 0
