"""Topology layer: crossbar/fat-tree wiring, routing, and capacity."""

from __future__ import annotations

import pytest

from repro.hardware.topology import (
    Crossbar,
    FatTree,
    TOPOLOGIES,
    TopologyError,
    TreeSwitch,
    make_topology,
)
from repro.mpi import build_world

KB = 1024


class TestMakeTopology:
    def test_registry_names(self):
        assert set(TOPOLOGIES) == {"crossbar", "fattree"}

    def test_unknown_spec_raises(self):
        with pytest.raises(TopologyError, match="unknown topology"):
            make_topology("hypercube")

    def test_crossbar_rejects_arity(self):
        with pytest.raises(TopologyError, match="takes no arity"):
            make_topology("crossbar", arity=8)

    def test_fattree_takes_arity(self):
        topo = make_topology("fattree", arity=4)
        assert isinstance(topo, FatTree)
        assert topo.arity == 4

    @pytest.mark.parametrize("arity", [1, 3, 5])
    def test_fattree_odd_arity_rejected(self, arity):
        with pytest.raises(TopologyError, match="even number"):
            FatTree(arity=arity)


class TestCrossbar:
    def test_default_topology_is_crossbar(self, gm):
        world = build_world(gm)
        assert isinstance(world.cluster.topology, Crossbar)
        assert world.cluster.switch is not None

    def test_port_capacity_enforced(self, gm):
        ports = gm.machine.switch.ports
        with pytest.raises(ValueError, match="exceed the switch's"):
            build_world(gm, n_nodes=ports + 1)

    def test_max_nodes_is_port_count(self, gm):
        world = build_world(gm)
        assert Crossbar().max_nodes(world.cluster) == gm.machine.switch.ports

    def test_explicit_crossbar_matches_default_wiring(self, gm):
        default = build_world(gm)
        explicit = build_world(gm, topology=Crossbar())
        assert len(default.cluster.nodes) == len(explicit.cluster.nodes)
        # Both two-node worlds arm the burst fast path.
        assert default.cluster.nodes[0].nic._fast
        assert explicit.cluster.nodes[0].nic._fast


def _one_way_s(system, n_nodes, topology, src, dst, nbytes=100 * KB):
    """Simulated seconds for one src→dst message on a fresh world."""
    world = build_world(system, n_nodes=n_nodes, topology=topology)
    engine = world.engine
    hs = world.endpoint(src).bind(world.cluster[src].new_context("tx"))
    hd = world.endpoint(dst).bind(world.cluster[dst].new_context("rx"))
    out = {}

    def sender():
        yield from hs.send(dst, nbytes, tag=1)

    def receiver():
        yield from hd.recv(src, nbytes, tag=1)
        out["t"] = engine.now

    engine.spawn(sender(), name="tx")
    p = engine.spawn(receiver(), name="rx")
    engine.run(p)
    return out["t"]


class TestFatTree:
    def test_capacity_is_k_times_half_k(self, gm):
        # k=4: 4 edges x 2 hosts = 8 nodes max.
        with pytest.raises(ValueError, match="8-host capacity"):
            build_world(gm, n_nodes=9, topology=FatTree(arity=4))
        world = build_world(gm, n_nodes=8, topology=FatTree(arity=4))
        assert len(world.cluster.nodes) == 8

    def test_no_central_switch(self, gm):
        world = build_world(gm, n_nodes=4, topology=FatTree(arity=4))
        assert world.cluster.switch is None

    def test_switch_counts(self, gm):
        topo = FatTree(arity=4)
        build_world(gm, n_nodes=6, topology=topo)
        # 6 hosts at 2 per edge -> 3 edge switches; k/2 = 2 cores.
        assert len(topo.edges) == 3
        assert len(topo.cores) == 2

    def test_hops_intra_vs_inter_edge(self, gm):
        topo = FatTree(arity=4)
        world = build_world(gm, n_nodes=4, topology=topo)
        assert topo.hops(0, 1, world.cluster) == 1  # same edge
        assert topo.hops(0, 2, world.cluster) == 3  # via a core

    def test_inter_edge_costs_two_more_hops(self, gm):
        # Same world shape, different destination: crossing the core must
        # be strictly slower (two extra link latencies + switch stages).
        intra = _one_way_s(gm, 4, FatTree(arity=4), 0, 1)
        inter = _one_way_s(gm, 4, FatTree(arity=4), 0, 2)
        assert inter > intra

    def test_deterministic(self, gm):
        a = _one_way_s(gm, 6, FatTree(arity=4), 0, 5)
        b = _one_way_s(gm, 6, FatTree(arity=4), 0, 5)
        assert a == b

    def test_all_pairs_deliver(self, gm):
        # Every (src, dst) pair on a 6-node two-edge-level world routes.
        for src in range(6):
            for dst in range(6):
                if src != dst:
                    assert _one_way_s(gm, 6, FatTree(arity=4), src, dst,
                                      nbytes=KB) > 0

    def test_counts_forwarded_packets(self, gm):
        topo = FatTree(arity=4)
        world = build_world(gm, n_nodes=4, topology=topo)
        del world
        assert all(sw.packets_forwarded == 0 for sw in topo.edges)
        _one_way_s(gm, 4, topo2 := FatTree(arity=4), 0, 2)
        assert sum(sw.packets_forwarded for sw in topo2.edges) > 0
        assert sum(sw.packets_forwarded for sw in topo2.cores) > 0


class TestTreeSwitch:
    def _switch(self, gm):
        from repro.sim.engine import Engine

        return TreeSwitch(Engine(), gm.machine.switch, gm.machine.nic, "sw")

    def test_duplicate_port_rejected(self, gm):
        sw = self._switch(gm)
        sw.add_port("a", lambda p: None)
        with pytest.raises(ValueError, match="already wired"):
            sw.add_port("a", lambda p: None)

    def test_port_exhaustion(self, gm):
        sw = self._switch(gm)
        for i in range(gm.machine.switch.ports):
            sw.add_port(f"p{i}", lambda p: None)
        with pytest.raises(TopologyError, match="ports in use"):
            sw.add_port("overflow", lambda p: None)

    def test_route_needs_existing_port(self, gm):
        sw = self._switch(gm)
        with pytest.raises(ValueError, match="no port"):
            sw.set_route(0, "missing")

    def test_unrouted_packet_raises(self, gm):
        from repro.transport.packets import Packet, PacketKind

        sw = self._switch(gm)
        pkt = Packet(kind=PacketKind.DATA, src=0, dst=7, msg_id=1,
                     payload_bytes=64)
        with pytest.raises(RuntimeError, match="no route to node 7"):
            sw.ingress(pkt)
