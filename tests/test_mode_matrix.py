"""Cross-mode differential matrix: every mode, every golden point, pairwise.

One parametrized table replaces the bespoke parity checks that used to be
scattered across the suite (bare-vs-checked in the golden-drift module,
traced-vs-bare for patterns, …).  Every golden point runs under every
execution mode and the result dicts are byte-compared pairwise:

* **pure** — the unchecked fast paths (burst pump, quiescence);
* **checked** — sanitizer attached, NICs forced onto the legacy
  per-packet path (also asserts zero violations);
* **traced** — an ambient :class:`Observer` tracing every world, which
  disarms the two-node burst fast path.

The **compiled** axis is a property of the running process
(``COMB_COMPILED=1`` with ``repro._simcore`` built): when active, every
row of this matrix already executed on the C kernel; a sentinel test
makes that leg visible (and visibly skipped when absent).

A replicated row (``reps=3`` on a quick config) closes the matrix over
the replication path: aggregated points must agree across modes too,
replication summaries included (deterministic configs give every mode
the same zero-width CIs).
"""

from __future__ import annotations

import pytest

from repro import compiled
from repro.config import gm_system, portals_system
from repro.core import PointTask, PollingConfig, SweepExecutor
from repro.obs import Observer, use_observer

from tests.test_verify_golden_drift import (
    ALLREDUCE_CFG,
    HALO_CFG,
    POLL_CFG,
    PWW_CFG,
)

KB = 1024

#: The full golden matrix: every recorded sweep and pattern point.
GOLDEN_TASKS = {
    "GM.polling": PointTask("polling", gm_system(), POLL_CFG),
    "GM.pww": PointTask("pww", gm_system(), PWW_CFG),
    "Portals.polling": PointTask("polling", portals_system(), POLL_CFG),
    "Portals.pww": PointTask("pww", portals_system(), PWW_CFG),
    "GM.halo2d": PointTask("pattern", gm_system(), HALO_CFG),
    "Portals.allreduce": PointTask("pattern", portals_system(),
                                   ALLREDUCE_CFG),
}

#: Quick point for the replicated row (sub-second, still full-path).
QUICK_CFG = PollingConfig(msg_bytes=50 * KB, poll_interval_iters=1_000,
                          measure_s=0.005, warmup_s=0.002, min_cycles=2)

MODES = ("pure", "checked", "traced")


def _run_mode(mode: str, tasks, reps: int = 1):
    """All ``tasks`` under one execution mode, as result dicts."""
    if mode == "checked":
        with SweepExecutor(jobs=1, check=True) as ex:
            points = ex.run(tasks, reps=reps)
            assert ex.violations == [], ex.violations
            assert ex.disagreements == [], ex.disagreements
        return [p.to_dict() for p in points]
    ex = SweepExecutor(jobs=1)
    if mode == "traced":
        with use_observer(Observer()):
            points = ex.run(tasks, reps=reps)
    else:
        points = ex.run(tasks, reps=reps)
    assert ex.disagreements == [], ex.disagreements
    return [p.to_dict() for p in points]


@pytest.fixture(scope="module")
def matrix():
    """{mode: [result dict per golden task]} — each mode simulated once."""
    tasks = list(GOLDEN_TASKS.values())
    return {mode: _run_mode(mode, tasks) for mode in MODES}


@pytest.mark.parametrize("point_index,point_id",
                         [(i, name) for i, name in enumerate(GOLDEN_TASKS)])
@pytest.mark.parametrize("mode_a,mode_b", [
    ("pure", "checked"),
    ("pure", "traced"),
    ("checked", "traced"),
])
def test_modes_bit_identical_pairwise(matrix, point_index, point_id,
                                      mode_a, mode_b):
    doc_a = matrix[mode_a][point_index]
    doc_b = matrix[mode_b][point_index]
    assert doc_a == doc_b, (point_id, mode_a, mode_b)


def test_compiled_leg_visible(matrix):
    """When this process runs the C kernel, the whole matrix above
    already executed on it; this sentinel makes that leg visible."""
    if not compiled.active():
        pytest.skip(f"compiled core not active ({compiled.status()}); "
                    "pure-Python legs covered above")
    assert matrix["pure"][0]["availability"] > 0.0


# ------------------------------------------------------------- replicated row
@pytest.fixture(scope="module")
def replicated_matrix():
    """The quick polling point replicated (reps=3) under every mode."""
    task = PointTask("polling", gm_system(), QUICK_CFG)
    return {mode: _run_mode(mode, [task], reps=3)[0] for mode in MODES}


@pytest.mark.parametrize("mode_a,mode_b", [
    ("pure", "checked"),
    ("pure", "traced"),
    ("checked", "traced"),
])
def test_replicated_point_bit_identical_pairwise(replicated_matrix,
                                                 mode_a, mode_b):
    """Aggregated replicated points — replication summary included —
    agree across modes: deterministic configs give every mode the same
    zero-width CIs."""
    assert replicated_matrix[mode_a] == replicated_matrix[mode_b]


def test_replicated_point_summary_shape(replicated_matrix):
    summary = replicated_matrix["pure"]["replication"]
    assert summary["reps"] == 3
    assert summary["disagreements"] == 0
    avail = summary["metrics"]["availability"]
    assert avail["ci_low"] == avail["ci_high"] == avail["median"]
