"""Unit tests: event primitives of the simulation kernel."""

import pytest

from repro.sim import AllOf, AnyOf, Engine, Event, SimulationError, Timeout


@pytest.fixture
def engine():
    return Engine()


class TestEvent:
    def test_starts_pending(self, engine):
        ev = engine.event()
        assert not ev.triggered
        assert not ev.processed
        assert ev.ok is None

    def test_value_unavailable_while_pending(self, engine):
        ev = engine.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_succeed_carries_value(self, engine):
        ev = engine.event()
        ev.succeed(42)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 42

    def test_succeed_twice_rejected(self, engine):
        ev = engine.event().succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_then_succeed_rejected(self, engine):
        ev = engine.event()
        ev.fail(RuntimeError("x"))
        ev.defuse()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self, engine):
        ev = engine.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_callbacks_run_in_order(self, engine):
        ev = engine.event()
        order = []
        ev.callbacks.append(lambda e: order.append(1))
        ev.callbacks.append(lambda e: order.append(2))
        ev.succeed()
        engine.run()
        assert order == [1, 2]

    def test_unhandled_failure_raises_at_step(self, engine):
        ev = engine.event()
        ev.fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            engine.run()

    def test_defused_failure_is_silent(self, engine):
        ev = engine.event()
        ev.fail(ValueError("boom"))
        ev.defuse()
        engine.run()  # no raise
        assert ev.ok is False

    def test_trigger_copies_state(self, engine):
        src = engine.event().succeed("payload")
        dst = engine.event()
        dst.trigger(src)
        assert dst.triggered and dst.value == "payload"


class TestTimeout:
    def test_fires_at_delay(self, engine):
        t = engine.timeout(2.5, value="done")
        engine.run()
        assert engine.now == 2.5
        assert t.processed and t.value == "done"

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.timeout(-0.1)

    def test_cannot_retrigger(self, engine):
        t = engine.timeout(1.0)
        with pytest.raises(SimulationError):
            t.succeed()
        with pytest.raises(SimulationError):
            t.fail(RuntimeError())

    def test_zero_delay_fires_now(self, engine):
        fired = []
        t = engine.timeout(0.0)
        t.callbacks.append(lambda e: fired.append(engine.now))
        engine.run()
        assert fired == [0.0]


class TestConditions:
    def test_all_of_waits_for_all(self, engine):
        a, b = engine.timeout(1.0, "a"), engine.timeout(2.0, "b")
        cond = engine.all_of([a, b])
        engine.run(cond)
        assert engine.now == 2.0
        assert set(cond.value.values()) == {"a", "b"}

    def test_any_of_fires_on_first(self, engine):
        a, b = engine.timeout(1.0, "a"), engine.timeout(2.0, "b")
        cond = engine.any_of([a, b])
        engine.run(cond)
        assert engine.now == 1.0
        assert list(cond.value.values()) == ["a"]

    def test_empty_all_of_fires_immediately(self, engine):
        cond = engine.all_of([])
        assert cond.triggered
        assert cond.value == {}

    def test_operator_composition(self, engine):
        a, b = engine.timeout(1.0), engine.timeout(3.0)
        both = a & b
        either = engine.timeout(0.5) | engine.timeout(9.0)
        engine.run(both)
        assert engine.now == 3.0
        assert either.processed  # fired at 0.5 along the way

    def test_condition_propagates_failure(self, engine):
        good = engine.timeout(1.0)
        bad = engine.event()
        cond = engine.all_of([good, bad])
        bad.fail(RuntimeError("inner"))
        cond.defuse()
        engine.run()
        assert cond.ok is False

    def test_already_processed_constituents(self, engine):
        a = engine.timeout(0.5)
        engine.run()
        cond = engine.all_of([a])
        assert cond.triggered

    def test_cross_engine_rejected(self, engine):
        other = Engine()
        a = engine.timeout(1.0)
        b = other.timeout(1.0)
        with pytest.raises(SimulationError):
            engine.all_of([a, b])
