"""Tests: the sweep execution layer (pool parity, point cache, memo).

The executor's contract is that *every* configuration — serial, pooled,
cached, memoized — produces bit-identical results.  These tests enforce
that contract, reusing the canonical configurations behind
``tests/golden_values.json`` so the cached path is pinned to the same
values the golden regression pins the direct path to.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.config import gm_system, portals_system
from repro.core import (
    PointCache,
    PointTask,
    PollingConfig,
    PwwConfig,
    SweepExecutor,
    current_executor,
    default_executor,
    polling_sweep,
    pww_sweep,
    run_task,
    task_key,
    use_executor,
)
from repro.core.executor import code_salt

KB = 1024
GOLDEN_PATH = Path(__file__).parent / "golden_values.json"

#: Coarse-but-real sweep settings shared by the parity tests.
POLL_BASE = PollingConfig(measure_s=0.005, warmup_s=0.002, min_cycles=2)
PWW_BASE = PwwConfig(batches=3, warmup_batches=1)
GRID = [1_000, 100_000, 10_000_000]


def _poll(executor=None):
    return polling_sweep(gm_system(), 50 * KB, GRID, base=POLL_BASE,
                         executor=executor)


def _pww(executor=None):
    return pww_sweep(portals_system(), 50 * KB, GRID, base=PWW_BASE,
                     executor=executor)


# ------------------------------------------------------------------ task keys
class TestTaskKey:
    def test_stable_across_calls(self):
        t = PointTask("polling", gm_system(), POLL_BASE)
        assert task_key(t) == task_key(t)

    def test_differs_on_method_config_field(self):
        a = PointTask("polling", gm_system(), POLL_BASE)
        b = PointTask("polling", gm_system(),
                      dataclasses.replace(POLL_BASE, queue_depth=2))
        assert task_key(a) != task_key(b)

    def test_differs_on_system_field(self):
        sys_a = gm_system()
        sys_b = gm_system(seed=1)
        cfg = POLL_BASE
        assert (task_key(PointTask("polling", sys_a, cfg))
                != task_key(PointTask("polling", sys_b, cfg)))

    def test_differs_on_nested_machine_field(self):
        sys_a = gm_system()
        machine = dataclasses.replace(
            sys_a.machine,
            cpu=dataclasses.replace(sys_a.machine.cpu, cycles_per_work_iter=3.0),
        )
        sys_b = sys_a.replaced(machine=machine)
        cfg = POLL_BASE
        assert (task_key(PointTask("polling", sys_a, cfg))
                != task_key(PointTask("polling", sys_b, cfg)))

    def test_differs_on_kind(self):
        cfg_p = PollingConfig(msg_bytes=50 * KB)
        cfg_w = PwwConfig(msg_bytes=50 * KB)
        assert (task_key(PointTask("polling", gm_system(), cfg_p))
                != task_key(PointTask("pww", gm_system(), cfg_w)))

    def test_differs_on_salt(self):
        t = PointTask("polling", gm_system(), POLL_BASE)
        assert task_key(t, salt="a") != task_key(t, salt="b")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            PointTask("bogus", gm_system(), POLL_BASE)

    def test_code_salt_is_stable_in_process(self):
        assert code_salt() == code_salt()


# ----------------------------------------------------------------- pool parity
class TestPoolParity:
    def test_jobs1_vs_jobs4_polling_and_pww(self):
        """The ISSUE's headline guarantee: pool output == serial output."""
        serial_poll = _poll(SweepExecutor(jobs=1))
        serial_pww = _pww(SweepExecutor(jobs=1))
        with SweepExecutor(jobs=4) as pool_ex:
            pool_poll = _poll(pool_ex)
            pool_pww = _pww(pool_ex)
        assert serial_poll.points == pool_poll.points
        assert serial_pww.points == pool_pww.points

    def test_pool_preserves_task_order(self):
        with SweepExecutor(jobs=2) as ex:
            series = _poll(ex)
        assert series.xs("poll_interval_iters") == GRID

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            SweepExecutor(jobs=0)


# ----------------------------------------------------------------- point cache
class TestPointCache:
    def test_cached_vs_uncached_identical(self, tmp_path):
        plain = _poll(None)
        ex1 = SweepExecutor(jobs=1, cache=PointCache(tmp_path))
        first = _poll(ex1)
        assert ex1.stats.misses == len(GRID) and ex1.stats.hits == 0
        # Fresh executor, warm disk cache: no simulation at all.
        ex2 = SweepExecutor(jobs=1, cache=PointCache(tmp_path))
        second = _poll(ex2)
        assert ex2.stats.hits == len(GRID) and ex2.stats.misses == 0
        assert plain.points == first.points == second.points

    def test_pww_round_trip_bit_exact(self, tmp_path):
        plain = _pww(None)
        _pww(SweepExecutor(jobs=1, cache=PointCache(tmp_path)))
        warm = _pww(SweepExecutor(jobs=1, cache=PointCache(tmp_path)))
        assert plain.points == warm.points

    def test_config_change_invalidates(self, tmp_path):
        ex = SweepExecutor(jobs=1, cache=PointCache(tmp_path))
        _poll(ex)
        assert ex.stats.misses == len(GRID)
        # Same grid, different queue depth: every point is a fresh miss.
        other = dataclasses.replace(POLL_BASE, queue_depth=2)
        polling_sweep(gm_system(), 50 * KB, GRID, base=other, executor=ex)
        assert ex.stats.misses == 2 * len(GRID)

    def test_system_change_invalidates(self, tmp_path):
        ex = SweepExecutor(jobs=1, cache=PointCache(tmp_path))
        _poll(ex)
        polling_sweep(gm_system(seed=7), 50 * KB, GRID, base=POLL_BASE,
                      executor=ex)
        assert ex.stats.misses == 2 * len(GRID)
        assert ex.stats.hits == 0

    def test_kind_cross_contamination_impossible(self, tmp_path):
        cache = PointCache(tmp_path)
        ex = SweepExecutor(jobs=1, cache=cache)
        series = _poll(ex)
        key = task_key(PointTask("polling", gm_system(),
                                 dataclasses.replace(
                                     POLL_BASE, msg_bytes=50 * KB,
                                     poll_interval_iters=GRID[0])))
        assert cache.get(key, "polling") == series.points[0]
        assert cache.get(key, "pww") is None

    def test_corrupt_record_is_a_miss(self, tmp_path):
        cache = PointCache(tmp_path)
        ex = SweepExecutor(jobs=1, cache=cache)
        _poll(ex)
        for f in Path(tmp_path).rglob("*.json"):
            f.write_text("{not json")
        ex2 = SweepExecutor(jobs=1, cache=PointCache(tmp_path))
        again = _poll(ex2)
        assert ex2.stats.misses == len(GRID)
        assert again.points == _poll(None).points

    @pytest.mark.parametrize("garbage", [
        "",                                  # zero-length (crashed writer)
        '{"kind": "polling", "point": {',    # truncated mid-record
        "[1, 2, 3]",                         # valid JSON, wrong shape
        '{"kind": "polling"}',               # record missing its point
        '{"kind": "polling", "point": {"bogus_field": 1}}',
        "\x00\x01\x02 binary trash",
    ])
    def test_garbage_record_evicted_then_recomputed(self, tmp_path, garbage):
        """A bad cache file costs one recompute, then heals itself."""
        cache = PointCache(tmp_path)
        _poll(SweepExecutor(jobs=1, cache=cache))
        files = sorted(Path(tmp_path).rglob("*.json"))
        assert len(files) == len(GRID)
        victim = files[0]
        victim.write_text(garbage)
        ex = SweepExecutor(jobs=1, cache=PointCache(tmp_path))
        again = _poll(ex)
        # Exactly the corrupted record misses; the rest still hit.
        assert ex.stats.misses == 1 and ex.stats.hits == len(GRID) - 1
        assert again.points == _poll(None).points
        # The garbage was evicted and the slot rewritten with a good record.
        rewritten = json.loads(victim.read_text())
        assert rewritten["kind"] == "polling"
        ex3 = SweepExecutor(jobs=1, cache=PointCache(tmp_path))
        _poll(ex3)
        assert ex3.stats.misses == 0

    def test_wrong_kind_record_not_evicted(self, tmp_path):
        """A kind mismatch is a miss but NOT corruption: the record is
        intact and must survive for its own kind's lookups."""
        cache = PointCache(tmp_path)
        ex = SweepExecutor(jobs=1, cache=cache)
        series = _poll(ex)
        key = task_key(PointTask("polling", gm_system(),
                                 dataclasses.replace(
                                     POLL_BASE, msg_bytes=50 * KB,
                                     poll_interval_iters=GRID[0])))
        assert cache.get(key, "pww") is None
        assert cache.get(key, "polling") == series.points[0]

    def test_len_and_clear(self, tmp_path):
        cache = PointCache(tmp_path)
        assert len(cache) == 0
        _poll(SweepExecutor(jobs=1, cache=cache))
        assert len(cache) == len(GRID)
        assert cache.clear() == len(GRID)
        assert len(cache) == 0


# --------------------------------------------------------------- golden values
class TestGoldenThroughExecutor:
    """The cached/executor path reproduces the golden regression values."""

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PATH.read_text())

    def test_polling_golden_via_cache_round_trip(self, tmp_path_factory, golden):
        tmp = tmp_path_factory.mktemp("cache")
        cfg = PollingConfig(msg_bytes=100 * KB, poll_interval_iters=1_000,
                            measure_s=0.02, warmup_s=0.004)
        for name, factory in (("GM", gm_system), ("Portals", portals_system)):
            task = PointTask("polling", factory(), cfg)
            SweepExecutor(jobs=1, cache=PointCache(tmp)).run_one(task)
            warm_ex = SweepExecutor(jobs=1, cache=PointCache(tmp))
            pt = warm_ex.run_one(task)
            assert warm_ex.stats.hits == 1, "expected a disk hit"
            want = golden[f"{name}.polling.100KB.1e3"]
            assert pt.availability == want["availability"]
            assert pt.bandwidth_Bps == want["bandwidth_Bps"]
            assert pt.msgs == want["msgs"]
            assert pt.interrupts == want["interrupts"]

    def test_pww_golden_via_cache_round_trip(self, tmp_path_factory, golden):
        tmp = tmp_path_factory.mktemp("cache")
        cfg = PwwConfig(msg_bytes=100 * KB, work_interval_iters=100_000,
                        batches=6, warmup_batches=2)
        for name, factory in (("GM", gm_system), ("Portals", portals_system)):
            task = PointTask("pww", factory(), cfg)
            SweepExecutor(jobs=1, cache=PointCache(tmp)).run_one(task)
            warm_ex = SweepExecutor(jobs=1, cache=PointCache(tmp))
            pt = warm_ex.run_one(task)
            assert warm_ex.stats.hits == 1, "expected a disk hit"
            want = golden[f"{name}.pww.100KB.1e5"]
            assert pt.availability == want["availability"]
            assert pt.bandwidth_Bps == want["bandwidth_Bps"]
            assert (pt.post_s, pt.work_s, pt.wait_s) == (
                want["post_s"], want["work_s"], want["wait_s"])


# ------------------------------------------------------------------------ memo
class TestMemo:
    def test_intra_run_dedup(self):
        ex = SweepExecutor(jobs=1)
        _poll(ex)
        assert ex.stats.misses == len(GRID)
        _poll(ex)
        assert ex.stats.hits == len(GRID)

    def test_duplicate_tasks_in_one_batch_simulated_once(self):
        cfg = dataclasses.replace(POLL_BASE, msg_bytes=50 * KB,
                                  poll_interval_iters=1_000)
        tasks = [PointTask("polling", gm_system(), cfg)] * 3
        ex = SweepExecutor(jobs=1)
        points = ex.run(tasks)
        assert ex.stats.misses == 1
        assert points[0] == points[1] == points[2]
        # Copies, not aliases: mutating one must not leak into the others.
        assert points[0] is not points[1]

    def test_hits_return_copies(self):
        ex = SweepExecutor(jobs=1)
        a = _poll(ex).points[0]
        b = _poll(ex).points[0]
        assert a == b and a is not b

    def test_memoize_off_resimulates(self):
        ex = SweepExecutor(jobs=1, memoize=False)
        _poll(ex)
        _poll(ex)
        assert ex.stats.misses == 2 * len(GRID)
        assert ex.stats.hits == 0


# ----------------------------------------------------------------- resolution
class TestExecutorResolution:
    def test_default_is_serial_singleton(self):
        assert current_executor() is default_executor()
        assert default_executor().jobs == 1

    def test_explicit_wins(self):
        ex = SweepExecutor(jobs=1)
        assert current_executor(ex) is ex

    def test_ambient_context(self):
        ex = SweepExecutor(jobs=1)
        with use_executor(ex):
            assert current_executor() is ex
        assert current_executor() is not ex

    def test_use_executor_accepts_none(self):
        with use_executor(None):
            assert current_executor() is default_executor()

    def test_run_task_direct(self):
        cfg = dataclasses.replace(POLL_BASE, poll_interval_iters=1_000)
        pt = run_task(PointTask("polling", gm_system(), cfg))
        assert pt.bandwidth_Bps > 0


# ------------------------------------------------------------------------- CLI
class TestCliFlags:
    def test_figures_with_cache_and_jobs(self, capsys, tmp_path):
        rc = main(["figures", "--ids", "fig13", "--per-decade", "1",
                   "--no-plots", "--jobs", "2",
                   "--cache-dir", str(tmp_path / "cache")])
        assert rc == 0
        assert (tmp_path / "cache").is_dir(), "cache dir should be populated"
        # Second run hits the disk cache and must agree claim-for-claim.
        out_first = capsys.readouterr().out
        rc = main(["figures", "--ids", "fig13", "--per-decade", "1",
                   "--no-plots", "--cache-dir", str(tmp_path / "cache")])
        assert rc == 0
        assert capsys.readouterr().out == out_first

    def test_figures_no_cache(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(["figures", "--ids", "fig13", "--per-decade", "1",
                   "--no-plots", "--no-cache"])
        assert rc == 0
        assert not (tmp_path / ".comb_cache").exists()

    def test_figures_check_flag_clean(self, capsys, tmp_path):
        rc = main(["figures", "--ids", "fig13", "--per-decade", "1",
                   "--no-plots", "--no-cache", "--check",
                   "--cache-dir", str(tmp_path / "unused")])
        assert rc == 0
        assert "0 violations" in capsys.readouterr().out

    def test_polling_check_flag_clean(self, capsys):
        rc = main(["polling", "--system", "GM", "--size", "50",
                   "--interval", "1000", "--check"])
        assert rc == 0
        assert "0 violations" in capsys.readouterr().out
