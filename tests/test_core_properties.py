"""Property-based tests over the COMB drivers themselves.

Hypothesis draws small random configurations; regardless of the draw, the
methods' defining invariants must hold on both systems:

* availability ∈ [0, 1];
* aggregate bandwidth never exceeds the host-bus ceiling;
* PWW phase durations are non-negative and sum to the cycle;
* the PWW work phase never beats its dry time;
* measurements are deterministic functions of their configuration.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import gm_system, portals_system
from repro.core import PollingConfig, PwwConfig, run_polling, run_pww

KB = 1024

_sizes = st.sampled_from([4 * KB, 10 * KB, 16 * KB, 64 * KB, 100 * KB])
_systems = st.sampled_from(["GM", "Portals"])


def _system(name):
    return gm_system() if name == "GM" else portals_system()


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    name=_systems,
    msg_bytes=_sizes,
    interval=st.integers(min_value=10, max_value=10_000_000),
    queue_depth=st.integers(min_value=1, max_value=6),
)
def test_polling_invariants(name, msg_bytes, interval, queue_depth):
    system = _system(name)
    pt = run_polling(system, PollingConfig(
        msg_bytes=msg_bytes, poll_interval_iters=interval,
        queue_depth=queue_depth, measure_s=0.01, warmup_s=0.002,
        min_cycles=3,
    ))
    assert 0.0 <= pt.availability <= 1.0 + 1e-9
    bus = system.machine.nic.host_dma_bandwidth_Bps
    # Completed-payload accounting has window-edge effects; bound loosely.
    assert pt.bandwidth_Bps <= bus * 1.35
    assert pt.elapsed_s > 0
    assert pt.iters >= 0
    if name == "GM":
        assert pt.interrupts == 0


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    name=_systems,
    msg_bytes=_sizes,
    work=st.integers(min_value=0, max_value=3_000_000),
    batch=st.integers(min_value=1, max_value=3),
    tests=st.integers(min_value=0, max_value=2),
)
def test_pww_invariants(name, msg_bytes, work, batch, tests):
    system = _system(name)
    pt = run_pww(system, PwwConfig(
        msg_bytes=msg_bytes, work_interval_iters=work, batch_msgs=batch,
        batches=4, warmup_batches=1, tests_in_work=tests,
    ))
    assert 0.0 <= pt.availability <= 1.0 + 1e-9
    assert pt.post_s > 0 and pt.work_s >= 0 and pt.wait_s >= 0
    assert pt.work_s >= pt.work_dry_s - 1e-12
    cycle = pt.post_s + pt.work_s + pt.wait_s
    assert cycle * pt.batches == pytest.approx(pt.elapsed_s, rel=1e-6)
    assert pt.bandwidth_Bps > 0


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    name=_systems,
    msg_bytes=_sizes,
    interval=st.integers(min_value=100, max_value=1_000_000),
)
def test_polling_determinism_property(name, msg_bytes, interval):
    cfg = PollingConfig(
        msg_bytes=msg_bytes, poll_interval_iters=interval,
        measure_s=0.008, warmup_s=0.002, min_cycles=3,
    )
    a = run_polling(_system(name), cfg)
    b = run_polling(_system(name), cfg)
    assert a.to_dict() == b.to_dict()
