"""Property-based tests: MPI non-overtaking across protocols and sizes.

Message streams mixing eager/rendezvous (GM) or short/long (Portals)
protocols travel over different wire lanes (control packets jump bulk
queues), so the sequence-number admission layer is what upholds MPI's
non-overtaking rule.  Hypothesis hammers it with arbitrary size mixes.

Note the exact MPI guarantee: *matching* is ordered (receive *i* posted on
a tag matches the *i*-th send on that tag), while *completion* order may
legally differ — a short message can finish before an earlier long one
still streaming.  The tests assert matching order via the monotonically
assigned wire message ids.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import gm_system, portals_system
from repro.mpi import build_world

KB = 1024

# Sizes straddling every protocol boundary: sub-MTU, multi-packet eager,
# at-threshold, and large rendezvous/long.
_sizes = st.sampled_from(
    [0, 512, 4 * KB, 10 * KB, 16 * KB, 40 * KB, 120 * KB]
)


def _run_stream(system, sizes):
    """Send ``sizes`` in order on one tag; return the matched requests."""
    world = build_world(system)
    engine = world.engine
    h0 = world.endpoint(0).bind(world.cluster[0].new_context("a0"))
    h1 = world.endpoint(1).bind(world.cluster[1].new_context("a1"))
    matched = []

    def receiver():
        reqs = []
        for s in sizes:
            r = yield from h0.irecv(1, s, tag=1)
            reqs.append(r)
        yield from h0.waitall(reqs)
        matched.extend(reqs)

    def sender():
        sreqs = []
        for s in sizes:
            r = yield from h1.isend(0, s, tag=1)
            sreqs.append(r)
        # Library-polled transports require the sender to keep calling MPI
        # for its side of the protocol to progress (the Progress Rule!).
        yield from h1.waitall(sreqs)

    p0 = engine.spawn(receiver())
    engine.spawn(sender())
    engine.run(p0)
    return matched


def _assert_matched_in_send_order(reqs):
    ids = [r.msg_id for r in reqs]
    assert all(r.done for r in reqs)
    assert ids == sorted(ids), f"matching overtook send order: {ids}"


@settings(max_examples=20, deadline=None)
@given(st.lists(_sizes, min_size=1, max_size=6))
def test_gm_matching_nonovertaking(sizes):
    """GM: receive *i* matches send *i* despite RTS/eager lane mixing."""
    _assert_matched_in_send_order(_run_stream(gm_system(), sizes))


@settings(max_examples=20, deadline=None)
@given(st.lists(_sizes, min_size=1, max_size=6))
def test_portals_matching_nonovertaking(sizes):
    """Portals: kernel matching preserves send order across short/long."""
    _assert_matched_in_send_order(_run_stream(portals_system(), sizes))


def test_gm_silent_sender_deadlocks_rendezvous():
    """Regression for a genuine GM semantic: a sender that posts a
    rendezvous isend and then never calls MPI again cannot complete the
    transfer (no application offload) — the simulation deadlocks rather
    than silently moving data."""
    world = build_world(gm_system())
    engine = world.engine
    h0 = world.endpoint(0).bind(world.cluster[0].new_context("a0"))
    h1 = world.endpoint(1).bind(world.cluster[1].new_context("a1"))

    def receiver():
        yield from h0.recv(1, 64 * KB, tag=1)

    def silent_sender():
        yield from h1.isend(0, 64 * KB, tag=1)
        yield engine.timeout(1.0)  # no MPI calls ever again

    p0 = engine.spawn(receiver())
    engine.spawn(silent_sender())
    with pytest.raises(Exception, match="deadlock"):
        engine.run(p0)


@settings(max_examples=15, deadline=None)
@given(
    st.lists(_sizes, min_size=2, max_size=5),
    st.integers(min_value=0, max_value=10_000),
)
def test_byte_conservation(sizes, delay_us):
    """Every posted byte is eventually delivered exactly once."""
    system = portals_system()
    world = build_world(system)
    engine = world.engine
    h0 = world.endpoint(0).bind(world.cluster[0].new_context("a0"))
    h1 = world.endpoint(1).bind(world.cluster[1].new_context("a1"))

    def receiver():
        yield engine.timeout(delay_us * 1e-6)
        reqs = []
        for s in sizes:
            r = yield from h0.irecv(1, s, tag=1)
            reqs.append(r)
        yield from h0.waitall(reqs)

    def sender():
        for s in sizes:
            yield from h1.isend(0, s, tag=1)
        yield engine.timeout(0.5)

    p0 = engine.spawn(receiver())
    engine.spawn(sender())
    engine.run(p0)
    assert h0.device.stats.bytes_recv_done == sum(sizes)
    assert h0.device.stats.msgs_recv_done == len(sizes)
