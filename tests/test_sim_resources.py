"""Unit tests: Resource, Store and Pipe primitives."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Engine, Pipe, Resource, SimulationError, Store


@pytest.fixture
def engine():
    return Engine()


class TestResource:
    def test_capacity_validation(self, engine):
        with pytest.raises(ValueError):
            Resource(engine, capacity=0)

    def test_immediate_grant_within_capacity(self, engine):
        res = Resource(engine, capacity=2)
        r1, r2 = res.request(), res.request()
        assert r1.triggered and r2.triggered
        assert res.count == 2

    def test_queues_beyond_capacity(self, engine):
        res = Resource(engine, capacity=1)
        r1 = res.request()
        r2 = res.request()
        assert r1.triggered and not r2.triggered
        assert res.queue_length == 1
        res.release(r1)
        assert r2.triggered

    def test_priority_order(self, engine):
        res = Resource(engine, capacity=1)
        held = res.request()
        low = res.request(priority=5)
        high = res.request(priority=1)
        res.release(held)
        assert high.triggered and not low.triggered

    def test_fifo_within_priority(self, engine):
        res = Resource(engine, capacity=1)
        held = res.request()
        first = res.request(priority=3)
        second = res.request(priority=3)
        res.release(held)
        assert first.triggered and not second.triggered

    def test_release_without_hold_rejected(self, engine):
        res = Resource(engine, capacity=1)
        foreign = Resource(engine, capacity=1).request()
        with pytest.raises(SimulationError):
            res.release(foreign)

    def test_cancel_waiting_request(self, engine):
        res = Resource(engine, capacity=1)
        held = res.request()
        waiting = res.request()
        waiting.cancel()
        res.release(held)
        assert not waiting.triggered
        assert res.count == 0


class TestStore:
    def test_put_then_get(self, engine):
        store = Store(engine)
        store.put("x")
        ev = store.get()
        assert ev.triggered and ev.value == "x"

    def test_get_then_put_wakes_fifo(self, engine):
        store = Store(engine)
        g1, g2 = store.get(), store.get()
        store.put(1)
        store.put(2)
        assert g1.value == 1 and g2.value == 2

    def test_try_get(self, engine):
        store = Store(engine)
        ok, item = store.try_get()
        assert not ok and item is None
        store.put("y")
        ok, item = store.try_get()
        assert ok and item == "y"

    def test_len_and_peek(self, engine):
        store = Store(engine)
        for i in range(3):
            store.put(i)
        assert len(store) == 3
        assert store.peek_all() == [0, 1, 2]
        assert len(store) == 3  # peek does not consume


class TestPipe:
    def test_occupancy_math(self, engine):
        pipe = Pipe(engine, bandwidth_Bps=1000.0, setup_s=0.5)
        assert pipe.occupancy_time(1000) == pytest.approx(1.5)

    def test_serialization(self, engine):
        pipe = Pipe(engine, bandwidth_Bps=100.0)
        delivered = []
        for i in range(3):
            ev = pipe.transfer(100, payload=i)
            ev.callbacks.append(lambda e: delivered.append((engine.now, e.value)))
        engine.run()
        assert delivered == [(1.0, 0), (2.0, 1), (3.0, 2)]

    def test_latency_is_pipelined(self, engine):
        pipe = Pipe(engine, bandwidth_Bps=100.0, latency_s=10.0)
        delivered = []
        for i in range(2):
            ev = pipe.transfer(100, payload=i)
            ev.callbacks.append(lambda e: delivered.append(engine.now))
        engine.run()
        # Occupancy 1s each, latency 10s added after exit, not serialized.
        assert delivered == [11.0, 12.0]

    def test_idle_gap_resets_busy(self, engine):
        pipe = Pipe(engine, bandwidth_Bps=100.0)
        pipe.transfer(100)
        engine.run()
        assert engine.now == 1.0
        engine.timeout(5.0)
        engine.run()
        ev = pipe.transfer(100)
        engine.run()
        assert engine.now == 7.0  # started at 6.0, not back-to-back

    def test_counters(self, engine):
        pipe = Pipe(engine, bandwidth_Bps=100.0)
        pipe.transfer(30)
        pipe.transfer(70)
        assert pipe.total_bytes == 100
        assert pipe.total_items == 2

    def test_validation(self, engine):
        with pytest.raises(ValueError):
            Pipe(engine, bandwidth_Bps=0.0)
        pipe = Pipe(engine, bandwidth_Bps=10.0)
        with pytest.raises(ValueError):
            pipe.transfer(-1)


class _HeapOnlyResource(Resource):
    """Reference implementation: every request rides the priority heap.

    The production :class:`Resource` short-cuts priority-0 requests onto a
    plain deque and merges the two lanes at grant time; this subclass
    bypasses the deque so the property test below can prove the merge is
    semantically invisible."""

    def request(self, priority: int = 0):
        import heapq

        from repro.sim.resources import Request

        req = Request(self, priority)
        if len(self._users) < self.capacity and not self._waiting \
                and not self._fifo:
            self._users.append(req)
            req.succeed(req)
        else:
            heapq.heappush(self._waiting, (priority, req._order, req))
        return req


class TestFifoLaneParity:
    """Property: the priority-0 FIFO fast lane is indistinguishable from
    pushing everything through the heap — same holders after every op."""

    def _drive(self, res, ops):
        created = []
        trace = []
        for op, arg in ops:
            if op == "req":
                created.append(res.request(priority=arg))
            elif op == "rel":
                held = [r for r in created if r in res._users]
                if held:
                    res.release(held[arg % len(held)])
            else:  # "cxl": withdraw a still-waiting request
                waiting = [r for r in created if not r.triggered]
                if waiting:
                    waiting[arg % len(waiting)].cancel()
            trace.append((
                sorted(created.index(r) for r in res._users),
                res.queue_length,
            ))
        return trace

    @given(
        capacity=st.integers(min_value=1, max_value=3),
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("req"), st.integers(0, 3)),
                st.tuples(st.just("rel"), st.integers(0, 15)),
                st.tuples(st.just("cxl"), st.integers(0, 15)),
            ),
            max_size=40,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_fifo_lane_matches_heap(self, capacity, ops):
        fast = self._drive(Resource(Engine(), capacity), ops)
        ref = self._drive(_HeapOnlyResource(Engine(), capacity), ops)
        assert fast == ref
