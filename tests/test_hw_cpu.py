"""Unit tests: the preemptible CPU model.

The availability metric rests entirely on this model being exact, so these
tests pin down the arithmetic: compute durations, interrupt stealing,
round-robin sharing, quantum continuation, spins and traps.
"""

import pytest

from repro.config import CpuConfig
from repro.hardware.cpu import CPU
from repro.sim import Engine, SimulationError


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def cpu(engine):
    return CPU(engine, CpuConfig(), name="cpu")


def run_proc(engine, gen):
    p = engine.spawn(gen)
    engine.run(p)
    return p


class TestCompute:
    def test_exact_duration(self, engine, cpu):
        ctx = cpu.new_context("a")

        def proc():
            yield ctx.compute(0.25)
            return engine.now

        assert run_proc(engine, proc()).value == pytest.approx(0.25)
        assert ctx.user_time_s == pytest.approx(0.25)

    def test_zero_compute_completes_immediately(self, engine, cpu):
        ctx = cpu.new_context("a")

        def proc():
            yield ctx.compute(0.0)
            return engine.now

        assert run_proc(engine, proc()).value == 0.0

    def test_negative_compute_rejected(self, cpu):
        ctx = cpu.new_context("a")
        with pytest.raises(ValueError):
            ctx.compute(-1.0)

    def test_concurrent_compute_on_same_context_rejected(self, engine, cpu):
        ctx = cpu.new_context("a")
        ctx.compute(1.0)
        with pytest.raises(SimulationError):
            ctx.compute(1.0)

    def test_busy_flag(self, engine, cpu):
        ctx = cpu.new_context("a")
        assert not ctx.busy
        ctx.compute(1.0)
        assert ctx.busy
        engine.run()
        assert not ctx.busy

    def test_back_to_back_computes_no_gap(self, engine, cpu):
        ctx = cpu.new_context("a")

        def proc():
            for _ in range(5):
                yield ctx.compute(0.1)
            return engine.now

        assert run_proc(engine, proc()).value == pytest.approx(0.5)


class TestKernelPreemption:
    def test_kernel_stretches_user_wall_time(self, engine, cpu):
        ctx = cpu.new_context("a")
        done = {}

        def proc():
            yield ctx.compute(1.0)
            done["at"] = engine.now

        engine.spawn(proc())
        engine.schedule_callback(0.5, lambda: cpu.kernel_work(0.2))
        engine.run()
        assert done["at"] == pytest.approx(1.2)
        assert ctx.user_time_s == pytest.approx(1.0)
        assert cpu.kernel_time_s == pytest.approx(0.2)

    def test_kernel_fifo_when_queued(self, engine, cpu):
        order = []
        cpu.kernel_work(0.1, fn=lambda: order.append("first"))
        cpu.kernel_work(0.1, fn=lambda: order.append("second"))
        engine.run()
        assert order == ["first", "second"]
        assert engine.now == pytest.approx(0.2)

    def test_kernel_on_idle_cpu_runs_immediately(self, engine, cpu):
        fired = []
        cpu.kernel_work(0.3, fn=lambda: fired.append(engine.now))
        engine.run()
        assert fired == [pytest.approx(0.3)]

    def test_negative_kernel_cost_rejected(self, cpu):
        with pytest.raises(ValueError):
            cpu.kernel_work(-0.1)

    def test_interrupt_storm_accounting(self, engine, cpu):
        ctx = cpu.new_context("a")
        done = {}

        def proc():
            yield ctx.compute(1.0)
            done["at"] = engine.now

        def storm():
            for _ in range(100):
                yield engine.timeout(0.005)
                cpu.kernel_work(0.001)

        engine.spawn(proc())
        engine.spawn(storm())
        engine.run()
        assert done["at"] == pytest.approx(1.1)
        snap = cpu.snapshot()
        assert snap["user_s"] == pytest.approx(1.0)
        assert snap["kernel_s"] == pytest.approx(0.1)
        assert snap["idle_s"] == pytest.approx(0.0, abs=1e-9)

    def test_in_kernel_flag(self, engine, cpu):
        assert not cpu.in_kernel
        cpu.kernel_work(0.1)
        assert cpu.in_kernel
        engine.run()
        assert not cpu.in_kernel


class TestRoundRobin:
    def test_two_hogs_share_evenly(self, engine):
        cpu = CPU(engine, CpuConfig(timeslice_s=0.01))
        a, b = cpu.new_context("a"), cpu.new_context("b")
        finish = {}

        def proc(ctx, key):
            yield ctx.compute(0.05)
            finish[key] = engine.now

        engine.spawn(proc(a, "a"))
        engine.spawn(proc(b, "b"))
        engine.run()
        # Interleaved in 10 ms slices: a ends at 90 ms, b at 100 ms.
        assert finish["a"] == pytest.approx(0.09)
        assert finish["b"] == pytest.approx(0.10)

    def test_short_task_finishes_within_first_slice(self, engine):
        cpu = CPU(engine, CpuConfig(timeslice_s=0.01))
        a, b = cpu.new_context("a"), cpu.new_context("b")
        finish = {}

        def proc(ctx, key, dur):
            yield ctx.compute(dur)
            finish[key] = engine.now

        engine.spawn(proc(a, "a", 0.002))
        engine.spawn(proc(b, "b", 0.03))
        engine.run()
        assert finish["a"] == pytest.approx(0.002)
        assert finish["b"] == pytest.approx(0.032)

    def test_quantum_continuation_across_calls(self, engine):
        # A context chaining many small computes must not lose its slot to
        # a competitor after each one (syscall-heavy process semantics).
        cpu = CPU(engine, CpuConfig(timeslice_s=0.01))
        chatty, hog = cpu.new_context("chatty"), cpu.new_context("hog")
        finish = {}

        def chatty_proc():
            for _ in range(50):
                yield chatty.compute(0.0001)  # 5 ms total, within one slice
            finish["chatty"] = engine.now

        def hog_proc():
            yield hog.compute(0.05)
            finish["hog"] = engine.now

        engine.spawn(chatty_proc())
        engine.spawn(hog_proc())
        engine.run()
        # Chatty runs its 5 ms inside its first quantum, not 50 quanta.
        assert finish["chatty"] <= 0.016


class TestSpin:
    def test_spin_consumes_user_time_until_event(self, engine, cpu):
        ctx = cpu.new_context("a")
        ev = engine.event()
        out = {}

        def proc():
            yield cpu.spin_until(ctx, ev)
            out["wall"] = engine.now
            out["user"] = cpu.context_time(ctx)

        engine.spawn(proc())
        engine.schedule_callback(0.02, lambda: cpu.kernel_work(0.01))
        engine.schedule_callback(0.05, ev.succeed)
        engine.run()
        assert out["wall"] == pytest.approx(0.05)
        assert out["user"] == pytest.approx(0.04)  # 10 ms stolen by kernel

    def test_spin_on_triggered_event_returns_instantly(self, engine, cpu):
        ctx = cpu.new_context("a")
        ev = engine.event().succeed()

        def proc():
            yield cpu.spin_until(ctx, ev)
            return engine.now

        assert run_proc(engine, proc()).value == 0.0
        assert ctx.user_time_s == 0.0

    def test_spin_release_deferred_until_scheduled(self, engine):
        # Event fires while the spinner is off-CPU: the spinner observes it
        # only when scheduled again.
        cpu = CPU(engine, CpuConfig(timeslice_s=0.01))
        spinner, hog = cpu.new_context("s"), cpu.new_context("h")
        ev = engine.event()
        out = {}

        def spin_proc():
            yield cpu.spin_until(spinner, ev)
            out["observed"] = engine.now

        def hog_proc():
            yield hog.compute(0.03)

        engine.spawn(spin_proc())
        engine.spawn(hog_proc())
        # Fire while the hog holds the CPU (spinner rotated out at 10 ms;
        # hog runs 10–20 ms; event at 15 ms).
        engine.schedule_callback(0.015, ev.succeed)
        engine.run()
        assert out["observed"] == pytest.approx(0.02)

    def test_spin_while_busy_rejected(self, engine, cpu):
        ctx = cpu.new_context("a")
        ctx.compute(1.0)
        with pytest.raises(SimulationError):
            cpu.spin_until(ctx, engine.event())


class TestTrap:
    def test_trap_keeps_slot_against_competitor(self, engine):
        cpu = CPU(engine, CpuConfig(timeslice_s=0.01))
        syscaller, hog = cpu.new_context("sys"), cpu.new_context("hog")
        finish = {}

        def sys_proc():
            for _ in range(3):
                yield syscaller.compute(0.001)
                yield syscaller.trap(0.001)
            finish["sys"] = engine.now

        def hog_proc():
            yield hog.compute(0.05)
            finish["hog"] = engine.now

        engine.spawn(sys_proc())
        engine.spawn(hog_proc())
        engine.run()
        # All six 1 ms segments run contiguously (traps preempt the hog
        # and the syscaller keeps its quantum between them).
        assert finish["sys"] == pytest.approx(0.006)

    def test_trap_counts_as_kernel_time(self, engine, cpu):
        ctx = cpu.new_context("a")

        def proc():
            yield ctx.trap(0.02)

        run_proc(engine, proc())
        assert cpu.kernel_time_s == pytest.approx(0.02)
        assert ctx.user_time_s == 0.0

    def test_trap_fn_runs_at_completion(self, engine, cpu):
        ctx = cpu.new_context("a")
        fired = []

        def proc():
            yield ctx.trap(0.01, fn=lambda: fired.append(engine.now))

        run_proc(engine, proc())
        assert fired == [pytest.approx(0.01)]


class TestAccounting:
    def test_conservation_with_everything_mixed(self, engine):
        cpu = CPU(engine, CpuConfig(timeslice_s=0.01))
        a, b = cpu.new_context("a"), cpu.new_context("b")

        def proc(ctx, dur):
            yield ctx.compute(dur)
            yield engine.timeout(0.01)
            yield ctx.compute(dur / 2)

        def irqs():
            for _ in range(20):
                yield engine.timeout(0.003)
                cpu.kernel_work(0.0005)

        engine.spawn(proc(a, 0.02))
        engine.spawn(proc(b, 0.03))
        engine.spawn(irqs())
        engine.run()
        snap = cpu.snapshot()
        total = snap["user_s"] + snap["kernel_s"] + snap["idle_s"]
        assert total == pytest.approx(cpu.elapsed())
        assert snap["user_s"] == pytest.approx(0.02 + 0.01 + 0.03 + 0.015)
        assert snap["kernel_s"] == pytest.approx(20 * 0.0005)

    def test_context_time_includes_running_segment(self, engine, cpu):
        ctx = cpu.new_context("a")
        samples = []

        def proc():
            yield ctx.compute(0.1)

        def sampler():
            yield engine.timeout(0.05)
            samples.append(cpu.context_time(ctx))

        engine.spawn(proc())
        engine.spawn(sampler())
        engine.run()
        assert samples[0] == pytest.approx(0.05)

    def test_elapsed_relative_to_creation(self):
        eng = Engine()
        eng.timeout(5.0)
        eng.run()
        cpu = CPU(eng, CpuConfig())
        eng.timeout(2.0)
        eng.run()
        assert cpu.elapsed() == pytest.approx(2.0)
