"""Tests for the comb-lint static analyzer (src/repro/lint/).

Each rule has a deliberately violating fixture module and a clean
counterpart under tests/lint_fixtures/.  Violating lines are annotated
in-source with ``# expect: RULE`` comments; the tests assert the linter
reports exactly those (rule, line) pairs — no more, no fewer.
"""

import json
import re
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import (
    NEVER_BASELINE_PREFIXES,
    Baseline,
    all_rule_classes,
    format_json,
    format_sarif,
    lint_paths,
    rule_catalog,
    sarif_log,
)

FIXTURES = Path(__file__).parent / "lint_fixtures"
SIM_FIX = FIXTURES / "repro" / "sim"
ANALYSIS_FIX = FIXTURES / "repro" / "analysis"

_EXPECT_RE = re.compile(r"#\s*expect:\s*([A-Z]+[0-9]{3})")


def expected_hits(path):
    """(rule, line) pairs parsed from ``# expect: RULE`` annotations."""
    hits = set()
    for lineno, text in enumerate(path.read_text().splitlines(), start=1):
        m = _EXPECT_RE.search(text)
        if m:
            hits.add((m.group(1), lineno))
    assert hits, f"fixture {path} has no '# expect:' annotations"
    return hits


def actual_hits(report):
    return {(v.rule, v.line) for v in report.violations}


BAD_FIXTURES = [
    SIM_FIX / "det001_bad.py",
    SIM_FIX / "det002_bad.py",
    SIM_FIX / "det003_bad.py",
    SIM_FIX / "det004_bad.py",
    SIM_FIX / "det005_bad.py",
    SIM_FIX / "sim001_bad.py",
    ANALYSIS_FIX / "unit001_bad.py",
    ANALYSIS_FIX / "unit002_bad.py",
    ANALYSIS_FIX / "unit003_bad.py",
    ANALYSIS_FIX / "unit004_bad.py",
]

OK_FIXTURES = [
    SIM_FIX / "det001_ok.py",
    SIM_FIX / "det002_ok.py",
    SIM_FIX / "det003_ok.py",
    SIM_FIX / "det004_ok.py",
    SIM_FIX / "det005_ok.py",
    SIM_FIX / "sim001_ok.py",
    ANALYSIS_FIX / "unit001_ok.py",
    ANALYSIS_FIX / "unit002_ok.py",
    ANALYSIS_FIX / "unit003_ok.py",
    ANALYSIS_FIX / "unit004_ok.py",
]

#: Rules validated by whole-tree fixtures (*_bad/ vs *_ok/ directories)
#: rather than single-file ones: they key on project structure
#: (executor facts, the schema registry) or on module path tails.
TREE_FIXTURE_RULES = {
    "CACHE001": "cacheproj",
    "EXEC001": "execproj",
    "OBS001": "obsproj",
    "SIM002": "sim002",
}


def tree_expected_hits(tree):
    hits = set()
    for path in sorted(tree.rglob("*.py")):
        for lineno, text in enumerate(
            path.read_text().splitlines(), start=1
        ):
            m = _EXPECT_RE.search(text)
            if m:
                hits.add((m.group(1), lineno))
    return hits


@pytest.mark.parametrize(
    "fixture", BAD_FIXTURES, ids=[p.stem for p in BAD_FIXTURES]
)
def test_bad_fixture_reports_each_annotated_line(fixture):
    report = lint_paths([fixture])
    assert actual_hits(report) == expected_hits(fixture)
    for v in report.violations:
        assert v.path.endswith(fixture.name)
        assert v.severity == "error"
        assert v.message


@pytest.mark.parametrize(
    "fixture", OK_FIXTURES, ids=[p.stem for p in OK_FIXTURES]
)
def test_ok_fixture_is_clean(fixture):
    report = lint_paths([fixture])
    assert report.ok, [v.to_dict() for v in report.violations]
    assert not report.violations
    assert not report.parse_errors


def test_every_rule_has_a_bad_and_ok_fixture():
    fixture_rules = {p.stem.split("_")[0].upper() for p in BAD_FIXTURES}
    fixture_rules |= set(TREE_FIXTURE_RULES)
    for cls in all_rule_classes():
        assert cls.rule_id in fixture_rules
    for stem in TREE_FIXTURE_RULES.values():
        assert (FIXTURES / f"{stem}_bad").is_dir()
        assert (FIXTURES / f"{stem}_ok").is_dir()


@pytest.mark.parametrize(
    "rule,stem",
    sorted(TREE_FIXTURE_RULES.items()),
    ids=sorted(TREE_FIXTURE_RULES),
)
def test_tree_fixture_bad_and_ok(rule, stem):
    if rule == "CACHE001":
        pytest.skip("cacheproj asserts message content separately below")
    bad = FIXTURES / f"{stem}_bad"
    report = lint_paths([bad])
    assert actual_hits(report) == tree_expected_hits(bad)
    assert {v.rule for v in report.violations} == {rule}

    ok_report = lint_paths([FIXTURES / f"{stem}_ok"])
    assert ok_report.ok, [v.to_dict() for v in ok_report.violations]


# ----------------------------------------------------- dataflow differential


def test_unit003_catches_mutation_suffix_rules_miss(tmp_path):
    """Seed a unit-mixing mutation into real analysis code: the knee
    predictor accidentally adds raw bytes (laundered through an
    unsuffixed temporary) to a time.  The syntactic suffix rules
    UNIT001/UNIT002 cannot see it; the dataflow rule UNIT003 must."""
    repo = Path(__file__).parent.parent
    source = (repo / "src" / "repro" / "analysis" / "knees.py").read_text()
    original = "    t_knee_s = 2 * base.queue_depth * msg_bytes / plateau\n"
    mutated = (
        "    raw = msg_bytes\n"
        "    t_knee_s = 2 * base.queue_depth * raw / plateau\n"
        "    predicted_bad = t_knee_s + raw\n"
    )
    assert original in source, "knees.py drifted; update the mutation seed"
    target = tmp_path / "repro" / "analysis" / "knees.py"
    target.parent.mkdir(parents=True)
    target.write_text(source.replace(original, mutated))

    suffix_only = lint_paths([target], select={"UNIT001", "UNIT002"})
    assert suffix_only.ok, [v.to_dict() for v in suffix_only.violations]

    dataflow = lint_paths([target], select={"UNIT003"})
    assert [v.rule for v in dataflow.violations] == ["UNIT003"]
    (violation,) = dataflow.violations
    assert "time" in violation.message and "size" in violation.message


# -------------------------------------------------------------- parallelism


def test_parallel_lint_matches_serial():
    paths = [SIM_FIX, ANALYSIS_FIX]
    serial = lint_paths(paths, jobs=1)
    pooled = lint_paths(paths, jobs=2)
    as_dicts = lambda r: [v.to_dict() for v in r.all_found()]  # noqa: E731
    assert as_dicts(pooled) == as_dicts(serial)
    assert pooled.files_checked == serial.files_checked
    assert serial.violations  # the comparison is not vacuous


def test_exclude_skips_directory_components():
    tests_dir = Path(__file__).parent
    report = lint_paths(
        [tests_dir / "lint_fixtures"], exclude={"lint_fixtures"}
    )
    assert report.files_checked == 0
    assert report.ok


# ------------------------------------------------------------- suppressions


def test_inline_and_filewide_suppressions():
    report = lint_paths([SIM_FIX / "suppressed.py"])
    # Only the second, unsuppressed time.time() call gates.
    assert [(v.rule, v.line) for v in report.violations] == [("DET001", 15)]
    waived = {(v.rule, v.line) for v in report.suppressed}
    assert ("DET001", 14) in waived  # inline disable=DET001
    assert ("DET004", 16) in waived  # file-wide disable-file=DET004


# ------------------------------------------------------------ CACHE001


def test_cache001_bad_project():
    report = lint_paths([FIXTURES / "cacheproj_bad"])
    rules = [v.rule for v in report.violations]
    assert rules == ["CACHE001"] * 5
    messages = " | ".join(v.message for v in report.violations)
    assert "no longer hashes 'system'" in messages
    assert "_SALT_SOURCES" in messages
    assert "Set is unordered" in messages
    assert "ClassVar" in messages
    assert "Any is not hash-stable" in messages


def test_cache001_ok_project():
    report = lint_paths([FIXTURES / "cacheproj_ok"])
    assert report.ok, [v.to_dict() for v in report.violations]


# ------------------------------------------------------------- baseline


def test_baseline_round_trip(tmp_path):
    fixture = ANALYSIS_FIX / "unit001_bad.py"
    first = lint_paths([fixture])
    assert first.violations

    baseline = Baseline.from_violations(first.violations)
    path = tmp_path / "baseline.json"
    baseline.save(path)

    reloaded = Baseline.load(path)
    second = lint_paths([fixture], baseline=reloaded)
    assert second.ok
    assert not second.violations
    assert len(second.baselined) == len(first.violations)

    # A file the baseline has never seen still gates.
    other = lint_paths([ANALYSIS_FIX / "unit002_bad.py"], baseline=reloaded)
    assert not other.ok


def test_baseline_fingerprint_survives_line_shift(tmp_path, monkeypatch):
    source = (ANALYSIS_FIX / "unit001_bad.py").read_text()
    target = tmp_path / "repro" / "analysis" / "unit001_bad.py"
    target.parent.mkdir(parents=True)
    target.write_text(source)

    monkeypatch.chdir(tmp_path)
    baseline = Baseline.from_violations(lint_paths([target]).violations)

    # Shift every violation down three lines; fingerprints must hold.
    target.write_text("# padding comment\n" * 3 + source)
    report = lint_paths([target], baseline=baseline)
    assert report.ok, "fingerprints must not depend on line numbers"
    assert not report.violations
    assert report.baselined


def test_det_and_cache_can_never_be_baselined():
    assert "DET" in NEVER_BASELINE_PREFIXES
    assert "CACHE" in NEVER_BASELINE_PREFIXES
    det_report = lint_paths([SIM_FIX / "det001_bad.py"])
    baseline = Baseline.from_violations(det_report.violations)
    assert baseline.forbidden_entries()


def test_cli_rejects_baseline_with_det_entries(tmp_path, capsys):
    det_report = lint_paths([SIM_FIX / "det001_bad.py"])
    path = tmp_path / "bad_baseline.json"
    Baseline.from_violations(det_report.violations).save(path)

    rc = cli_main(
        ["lint", str(SIM_FIX / "det001_ok.py"), "--baseline", str(path)]
    )
    assert rc == 2
    assert "baseline" in capsys.readouterr().err.lower()


# ---------------------------------------------------------------- gate


def test_real_tree_is_clean_with_empty_baseline():
    """The acceptance gate: ``comb lint src/`` exits 0, no baselining."""
    report = lint_paths([Path(__file__).parent.parent / "src"])
    assert report.ok, [v.to_dict() for v in report.violations]
    assert not report.violations
    assert not report.parse_errors
    assert report.files_checked > 50


def test_shipped_baseline_is_empty():
    repo = Path(__file__).parent.parent
    doc = json.loads((repo / "tools" / "lint_baseline.json").read_text())
    assert doc["entries"] == []


# ----------------------------------------------------------------- SARIF


def _sarif_schema():
    path = Path(__file__).parent / "data" / "sarif-2.1.0-subset.schema.json"
    return json.loads(path.read_text())


def test_sarif_log_validates_against_schema():
    jsonschema = pytest.importorskip("jsonschema")
    report = lint_paths([SIM_FIX / "det001_bad.py"])
    doc = sarif_log(report)
    jsonschema.validate(doc, _sarif_schema())
    (run,) = doc["runs"]
    assert run["tool"]["driver"]["name"] == "comb-lint"
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert rule_ids == sorted(rule_ids)
    for result in run["results"]:
        assert rule_ids[result["ruleIndex"]] == result["ruleId"]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1  # SARIF columns are 1-based
        assert "combLintFingerprint/v1" in result["partialFingerprints"]


def test_sarif_marks_suppressed_and_baselined(tmp_path):
    jsonschema = pytest.importorskip("jsonschema")
    fixture = ANALYSIS_FIX / "unit001_bad.py"
    baseline = Baseline.from_violations(lint_paths([fixture]).violations)
    report = lint_paths(
        [fixture, SIM_FIX / "suppressed.py"], baseline=baseline
    )
    assert report.baselined and report.suppressed
    doc = sarif_log(report)
    jsonschema.validate(doc, _sarif_schema())
    kinds = {
        s["kind"]
        for result in doc["runs"][0]["results"]
        for s in result.get("suppressions", [])
    }
    assert kinds == {"inSource", "external"}
    gating = [
        r for r in doc["runs"][0]["results"] if "suppressions" not in r
    ]
    assert len(gating) == len(report.violations)


def test_format_sarif_is_deterministic_json():
    report = lint_paths([SIM_FIX / "det002_bad.py"])
    text = format_sarif(report)
    assert text == format_sarif(report)
    assert json.loads(text)["version"] == "2.1.0"


def test_cli_sarif_output(capsys, tmp_path):
    jsonschema = pytest.importorskip("jsonschema")
    rc = cli_main(
        [
            "lint",
            str(SIM_FIX / "det001_bad.py"),
            "--no-baseline",
            "--format=sarif",
        ]
    )
    assert rc == 1
    doc = json.loads(capsys.readouterr().out)
    jsonschema.validate(doc, _sarif_schema())
    assert doc["version"] == "2.1.0"

    rc = cli_main(
        [
            "lint",
            str(SIM_FIX / "det001_ok.py"),
            "--no-baseline",
            "--format=sarif",
        ]
    )
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    jsonschema.validate(doc, _sarif_schema())
    assert doc["runs"][0]["results"] == []


def test_cli_jobs_flag(capsys):
    rc = cli_main(
        [
            "lint",
            str(SIM_FIX),
            "--no-baseline",
            "--format=json",
            "--jobs",
            "2",
        ]
    )
    assert rc == 1
    pooled = json.loads(capsys.readouterr().out)
    rc = cli_main(
        ["lint", str(SIM_FIX), "--no-baseline", "--format=json"]
    )
    assert rc == 1
    serial = json.loads(capsys.readouterr().out)
    assert pooled == serial


# ----------------------------------------------------------------- CLI


def test_cli_json_output(capsys):
    rc = cli_main(
        [
            "lint",
            str(SIM_FIX / "det001_bad.py"),
            "--no-baseline",
            "--format=json",
        ]
    )
    assert rc == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is False
    assert doc["counts"]["new"] == 4
    assert doc["by_rule"] == {"DET001": 4}
    assert all(v["rule"] == "DET001" for v in doc["violations"])


def test_cli_select_filters_rules(capsys):
    rc = cli_main(
        [
            "lint",
            str(ANALYSIS_FIX / "unit001_bad.py"),
            "--no-baseline",
            "--select",
            "UNIT002",
        ]
    )
    capsys.readouterr()
    assert rc == 0  # UNIT001 hits filtered out by --select UNIT002


def test_cli_list_rules(capsys):
    rc = cli_main(["lint", "--list-rules"])
    assert rc == 0
    out = capsys.readouterr().out
    for cls in all_rule_classes():
        assert cls.rule_id in out


def test_format_json_is_deterministic():
    report = lint_paths([SIM_FIX / "det002_bad.py"])
    assert format_json(report) == format_json(report)


def test_rule_catalog_complete():
    catalog = rule_catalog()
    assert set(catalog) == {
        "DET001",
        "DET002",
        "DET003",
        "DET004",
        "DET005",
        "UNIT001",
        "UNIT002",
        "UNIT003",
        "UNIT004",
        "CACHE001",
        "EXEC001",
        "SIM001",
        "SIM002",
        "OBS001",
    }
    for summary in catalog.values():
        assert summary
