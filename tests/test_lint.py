"""Tests for the comb-lint static analyzer (src/repro/lint/).

Each rule has a deliberately violating fixture module and a clean
counterpart under tests/lint_fixtures/.  Violating lines are annotated
in-source with ``# expect: RULE`` comments; the tests assert the linter
reports exactly those (rule, line) pairs — no more, no fewer.
"""

import json
import re
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import (
    NEVER_BASELINE_PREFIXES,
    Baseline,
    all_rule_classes,
    format_json,
    lint_paths,
    rule_catalog,
)

FIXTURES = Path(__file__).parent / "lint_fixtures"
SIM_FIX = FIXTURES / "repro" / "sim"
ANALYSIS_FIX = FIXTURES / "repro" / "analysis"

_EXPECT_RE = re.compile(r"#\s*expect:\s*([A-Z]+[0-9]{3})")


def expected_hits(path):
    """(rule, line) pairs parsed from ``# expect: RULE`` annotations."""
    hits = set()
    for lineno, text in enumerate(path.read_text().splitlines(), start=1):
        m = _EXPECT_RE.search(text)
        if m:
            hits.add((m.group(1), lineno))
    assert hits, f"fixture {path} has no '# expect:' annotations"
    return hits


def actual_hits(report):
    return {(v.rule, v.line) for v in report.violations}


BAD_FIXTURES = [
    SIM_FIX / "det001_bad.py",
    SIM_FIX / "det002_bad.py",
    SIM_FIX / "det003_bad.py",
    SIM_FIX / "det004_bad.py",
    SIM_FIX / "sim001_bad.py",
    ANALYSIS_FIX / "unit001_bad.py",
    ANALYSIS_FIX / "unit002_bad.py",
]

OK_FIXTURES = [
    SIM_FIX / "det001_ok.py",
    SIM_FIX / "det002_ok.py",
    SIM_FIX / "det003_ok.py",
    SIM_FIX / "det004_ok.py",
    SIM_FIX / "sim001_ok.py",
    ANALYSIS_FIX / "unit001_ok.py",
    ANALYSIS_FIX / "unit002_ok.py",
]


@pytest.mark.parametrize(
    "fixture", BAD_FIXTURES, ids=[p.stem for p in BAD_FIXTURES]
)
def test_bad_fixture_reports_each_annotated_line(fixture):
    report = lint_paths([fixture])
    assert actual_hits(report) == expected_hits(fixture)
    for v in report.violations:
        assert v.path.endswith(fixture.name)
        assert v.severity == "error"
        assert v.message


@pytest.mark.parametrize(
    "fixture", OK_FIXTURES, ids=[p.stem for p in OK_FIXTURES]
)
def test_ok_fixture_is_clean(fixture):
    report = lint_paths([fixture])
    assert report.ok, [v.to_dict() for v in report.violations]
    assert not report.violations
    assert not report.parse_errors


def test_every_rule_has_a_bad_and_ok_fixture():
    fixture_rules = {p.stem.split("_")[0].upper() for p in BAD_FIXTURES}
    fixture_rules.add("CACHE001")  # covered by the cacheproj trees below
    for cls in all_rule_classes():
        assert cls.rule_id in fixture_rules


# ------------------------------------------------------------- suppressions


def test_inline_and_filewide_suppressions():
    report = lint_paths([SIM_FIX / "suppressed.py"])
    # Only the second, unsuppressed time.time() call gates.
    assert [(v.rule, v.line) for v in report.violations] == [("DET001", 15)]
    waived = {(v.rule, v.line) for v in report.suppressed}
    assert ("DET001", 14) in waived  # inline disable=DET001
    assert ("DET004", 16) in waived  # file-wide disable-file=DET004


# ------------------------------------------------------------ CACHE001


def test_cache001_bad_project():
    report = lint_paths([FIXTURES / "cacheproj_bad"])
    rules = [v.rule for v in report.violations]
    assert rules == ["CACHE001"] * 5
    messages = " | ".join(v.message for v in report.violations)
    assert "no longer hashes 'system'" in messages
    assert "_SALT_SOURCES" in messages
    assert "Set is unordered" in messages
    assert "ClassVar" in messages
    assert "Any is not hash-stable" in messages


def test_cache001_ok_project():
    report = lint_paths([FIXTURES / "cacheproj_ok"])
    assert report.ok, [v.to_dict() for v in report.violations]


# ------------------------------------------------------------- baseline


def test_baseline_round_trip(tmp_path):
    fixture = ANALYSIS_FIX / "unit001_bad.py"
    first = lint_paths([fixture])
    assert first.violations

    baseline = Baseline.from_violations(first.violations)
    path = tmp_path / "baseline.json"
    baseline.save(path)

    reloaded = Baseline.load(path)
    second = lint_paths([fixture], baseline=reloaded)
    assert second.ok
    assert not second.violations
    assert len(second.baselined) == len(first.violations)

    # A file the baseline has never seen still gates.
    other = lint_paths([ANALYSIS_FIX / "unit002_bad.py"], baseline=reloaded)
    assert not other.ok


def test_baseline_fingerprint_survives_line_shift(tmp_path, monkeypatch):
    source = (ANALYSIS_FIX / "unit001_bad.py").read_text()
    target = tmp_path / "repro" / "analysis" / "unit001_bad.py"
    target.parent.mkdir(parents=True)
    target.write_text(source)

    monkeypatch.chdir(tmp_path)
    baseline = Baseline.from_violations(lint_paths([target]).violations)

    # Shift every violation down three lines; fingerprints must hold.
    target.write_text("# padding comment\n" * 3 + source)
    report = lint_paths([target], baseline=baseline)
    assert report.ok, "fingerprints must not depend on line numbers"
    assert not report.violations
    assert report.baselined


def test_det_and_cache_can_never_be_baselined():
    assert "DET" in NEVER_BASELINE_PREFIXES
    assert "CACHE" in NEVER_BASELINE_PREFIXES
    det_report = lint_paths([SIM_FIX / "det001_bad.py"])
    baseline = Baseline.from_violations(det_report.violations)
    assert baseline.forbidden_entries()


def test_cli_rejects_baseline_with_det_entries(tmp_path, capsys):
    det_report = lint_paths([SIM_FIX / "det001_bad.py"])
    path = tmp_path / "bad_baseline.json"
    Baseline.from_violations(det_report.violations).save(path)

    rc = cli_main(
        ["lint", str(SIM_FIX / "det001_ok.py"), "--baseline", str(path)]
    )
    assert rc == 2
    assert "baseline" in capsys.readouterr().err.lower()


# ---------------------------------------------------------------- gate


def test_real_tree_is_clean_with_empty_baseline():
    """The acceptance gate: ``comb lint src/`` exits 0, no baselining."""
    report = lint_paths([Path(__file__).parent.parent / "src"])
    assert report.ok, [v.to_dict() for v in report.violations]
    assert not report.violations
    assert not report.parse_errors
    assert report.files_checked > 50


def test_shipped_baseline_is_empty():
    repo = Path(__file__).parent.parent
    doc = json.loads((repo / "tools" / "lint_baseline.json").read_text())
    assert doc["entries"] == []


# ----------------------------------------------------------------- CLI


def test_cli_json_output(capsys):
    rc = cli_main(
        [
            "lint",
            str(SIM_FIX / "det001_bad.py"),
            "--no-baseline",
            "--format=json",
        ]
    )
    assert rc == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is False
    assert doc["counts"]["new"] == 4
    assert doc["by_rule"] == {"DET001": 4}
    assert all(v["rule"] == "DET001" for v in doc["violations"])


def test_cli_select_filters_rules(capsys):
    rc = cli_main(
        [
            "lint",
            str(ANALYSIS_FIX / "unit001_bad.py"),
            "--no-baseline",
            "--select",
            "UNIT002",
        ]
    )
    capsys.readouterr()
    assert rc == 0  # UNIT001 hits filtered out by --select UNIT002


def test_cli_list_rules(capsys):
    rc = cli_main(["lint", "--list-rules"])
    assert rc == 0
    out = capsys.readouterr().out
    for cls in all_rule_classes():
        assert cls.rule_id in out


def test_format_json_is_deterministic():
    report = lint_paths([SIM_FIX / "det002_bad.py"])
    assert format_json(report) == format_json(report)


def test_rule_catalog_complete():
    catalog = rule_catalog()
    assert set(catalog) == {
        "DET001",
        "DET002",
        "DET003",
        "DET004",
        "UNIT001",
        "UNIT002",
        "CACHE001",
        "SIM001",
    }
    for summary in catalog.values():
        assert summary
