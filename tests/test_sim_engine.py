"""Unit tests: engine scheduling semantics."""

import pytest

from repro.sim import EmptySchedule, Engine, INFINITY, SimulationError


@pytest.fixture
def engine():
    return Engine()


class TestClock:
    def test_starts_at_zero(self, engine):
        assert engine.now == 0.0

    def test_custom_start_time(self):
        eng = Engine(start_time=100.0)
        assert eng.now == 100.0
        eng.timeout(1.0)
        eng.run()
        assert eng.now == 101.0

    def test_peek_empty(self, engine):
        assert engine.peek() == INFINITY

    def test_peek_next(self, engine):
        engine.timeout(5.0)
        engine.timeout(2.0)
        assert engine.peek() == 2.0


class TestStep:
    def test_step_empty_raises(self, engine):
        with pytest.raises(EmptySchedule):
            engine.step()

    def test_steps_in_time_order(self, engine):
        seen = []
        for d in (3.0, 1.0, 2.0):
            t = engine.timeout(d)
            t.callbacks.append(lambda e, d=d: seen.append(d))
        while True:
            try:
                engine.step()
            except EmptySchedule:
                break
        assert seen == [1.0, 2.0, 3.0]

    def test_fifo_within_same_time(self, engine):
        seen = []
        for i in range(5):
            t = engine.timeout(1.0)
            t.callbacks.append(lambda e, i=i: seen.append(i))
        engine.run()
        assert seen == [0, 1, 2, 3, 4]


class TestRun:
    def test_run_until_time_advances_clock(self, engine):
        engine.run(until=10.0)
        assert engine.now == 10.0

    def test_run_until_past_rejected(self, engine):
        engine.run(until=5.0)
        with pytest.raises(SimulationError):
            engine.run(until=1.0)

    def test_run_until_event_returns_value(self, engine):
        t = engine.timeout(2.0, value="v")
        assert engine.run(t) == "v"
        assert engine.now == 2.0

    def test_run_until_event_raises_failure(self, engine):
        ev = engine.event()
        engine.schedule_callback(1.0, lambda: ev.fail(KeyError("k")))
        with pytest.raises(KeyError):
            engine.run(ev)

    def test_run_until_unreachable_event_deadlocks(self, engine):
        ev = engine.event()
        with pytest.raises(SimulationError, match="deadlock"):
            engine.run(ev)

    def test_run_until_exhaustion(self, engine):
        engine.timeout(1.0)
        engine.timeout(4.0)
        engine.run()
        assert engine.now == 4.0

    def test_events_beyond_horizon_stay_queued(self, engine):
        fired = []
        t = engine.timeout(10.0)
        t.callbacks.append(lambda e: fired.append(True))
        engine.run(until=5.0)
        assert not fired
        engine.run(until=15.0)
        assert fired


class TestScheduleCallback:
    def test_callback_runs_at_delay(self, engine):
        times = []
        engine.schedule_callback(3.0, lambda: times.append(engine.now))
        engine.run()
        assert times == [3.0]

    def test_determinism_across_runs(self):
        def build():
            eng = Engine()
            log = []
            for i in range(50):
                eng.schedule_callback(
                    (i * 7919 % 13) / 10.0, lambda i=i: log.append(i)
                )
            eng.run()
            return log

        assert build() == build()
