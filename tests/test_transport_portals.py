"""Unit tests: Portals transport specifics (kernel, interrupts, offload)."""

import dataclasses

import pytest

from repro.config import portals_system
from repro.mpi import build_world

KB = 1024


def make(world):
    ctx0 = world.cluster[0].new_context("app0")
    ctx1 = world.cluster[1].new_context("app1")
    return (world.engine, ctx0,
            world.endpoint(0).bind(ctx0), world.endpoint(1).bind(ctx1))


class TestApplicationOffload:
    def test_progress_without_library_calls(self, portals):
        """The defining Portals property: posted transfers complete during
        total MPI silence on both sides."""
        world = build_world(portals)
        engine, _ctx0, h0, h1 = make(world)
        probe = {}

        def rank0():
            rreq = yield from h0.irecv(1, 100 * KB, tag=1)
            sreq = yield from h0.isend(1, 100 * KB, tag=1)
            yield engine.timeout(0.05)  # silence
            probe["done"] = (rreq.done, sreq.done)

        def rank1():
            rreq = yield from h1.irecv(0, 100 * KB, tag=1)
            sreq = yield from h1.isend(0, 100 * KB, tag=1)
            yield engine.timeout(0.05)
            probe["peer_done"] = (rreq.done, sreq.done)

        p0 = engine.spawn(rank0())
        p1 = engine.spawn(rank1())
        engine.run(engine.all_of([p0, p1]))
        assert probe["done"] == (True, True)
        assert probe["peer_done"] == (True, True)

    def test_short_messages_also_offloaded(self, portals):
        world = build_world(portals)
        engine, _ctx0, h0, h1 = make(world)
        probe = {}

        def rank0():
            rreq = yield from h0.irecv(1, 4 * KB, tag=1)
            yield engine.timeout(0.05)
            probe["done"] = rreq.done

        def rank1():
            yield from h1.isend(0, 4 * KB, tag=1)
            yield engine.timeout(0.05)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        assert probe["done"] is True


class TestInterrupts:
    def test_receiver_pays_interrupts_per_packet(self, portals):
        world = build_world(portals)
        engine, _ctx0, h0, h1 = make(world)

        def rank0():
            yield from h0.recv(1, 100 * KB, tag=1)

        def rank1():
            yield from h1.send(0, 100 * KB, tag=1)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        n_packets = -(-100 * KB // portals.machine.nic.mtu_bytes)
        # Data interrupts at least one per packet, plus RTS/acks.
        assert world.cluster[0].irq.count >= n_packets
        assert world.cluster[0].cpu.kernel_time_s > 0

    def test_kernel_time_scales_with_bytes(self, portals):
        def kernel_for(nbytes):
            world = build_world(portals)
            engine, _ctx0, h0, h1 = make(world)

            def rank0():
                yield from h0.recv(1, nbytes, tag=1)

            def rank1():
                yield from h1.send(0, nbytes, tag=1)

            p0 = engine.spawn(rank0())
            engine.spawn(rank1())
            engine.run(p0)
            return world.cluster[0].cpu.kernel_time_s

        small, large = kernel_for(50 * KB), kernel_for(200 * KB)
        assert large > 2.5 * small


class TestGetProtocol:
    def test_long_message_uses_rts_get(self, portals):
        world = build_world(portals)
        engine, _ctx0, h0, h1 = make(world)

        def rank0():
            yield from h0.send(1, 100 * KB, tag=1)

        def rank1():
            yield from h1.recv(0, 100 * KB, tag=1)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        # Sender emitted the RTS header (plus possibly acks for its rx: none
        # here); receiver emitted the GET plus data acks.
        assert h0.device.stats.ctrl_packets >= 1
        assert h1.device.stats.ctrl_packets >= 2

    def test_unexpected_long_message_buffers_header_only(self, portals):
        """No kernel→user double copy for long unexpected messages: the
        data only crosses the wire after the receive is posted."""
        world = build_world(portals)
        engine, _ctx0, h0, h1 = make(world)
        probe = {}

        def rank0():
            yield engine.timeout(0.05)  # let the RTS arrive unexpected
            probe["rx_packets_before"] = world.cluster[0].nic.rx_packets
            yield from h0.recv(1, 200 * KB, tag=1)
            probe["rx_packets_after"] = world.cluster[0].nic.rx_packets

        def rank1():
            yield from h1.isend(0, 200 * KB, tag=1)
            yield engine.timeout(0.2)

        p0 = engine.spawn(rank0())
        engine.spawn(rank1())
        engine.run(p0)
        # Before the irecv, only the RTS header had arrived.
        assert probe["rx_packets_before"] <= 2
        assert probe["rx_packets_after"] > 40

    def test_unexpected_short_message_pays_double_copy(self, portals):
        """Short unexpected messages buffer in the kernel; the late irecv
        trap carries the extra copy (visible as extra kernel time)."""
        def irecv_kernel_cost(pre_delay):
            world = build_world(portals)
            engine, _ctx0, h0, h1 = make(world)
            out = {}

            def rank0():
                yield engine.timeout(pre_delay)
                k0 = world.cluster[0].cpu.kernel_time_s
                req = yield from h0.irecv(1, 8 * KB, tag=1)
                out["trap_cost"] = world.cluster[0].cpu.kernel_time_s - k0
                yield from h0.wait(req)

            def rank1():
                yield from h1.send(0, 8 * KB, tag=1)

            p0 = engine.spawn(rank0())
            engine.spawn(rank1())
            engine.run(p0)
            return out["trap_cost"]

        expected = irecv_kernel_cost(0.0)        # posted before arrival
        unexpected = irecv_kernel_cost(0.05)     # arrives unexpected
        assert unexpected > expected + 50e-6


class TestFlowControl:
    def test_window_limits_inflight(self, portals):
        """With acks disabled-slow (tiny window), the pipeline still drains
        correctly — go-back-N credits balance exactly."""
        tight = dataclasses.replace(
            portals, portals=dataclasses.replace(
                portals.portals, tx_window_pkts=1
            ),
        )
        world = build_world(tight)
        engine, _ctx0, h0, h1 = make(world)

        def rank0():
            yield from h0.send(1, 50 * KB, tag=1)

        def rank1():
            yield from h1.recv(0, 50 * KB, tag=1)

        p0 = engine.spawn(rank0())
        p1 = engine.spawn(rank1())
        engine.run(engine.all_of([p0, p1]))
        assert h1.device.stats.bytes_recv_done == 50 * KB

    def test_wider_window_is_not_slower(self, portals):
        def transfer_time(window):
            system = dataclasses.replace(
                portals, portals=dataclasses.replace(
                    portals.portals, tx_window_pkts=window
                ),
            )
            world = build_world(system)
            engine, _ctx0, h0, h1 = make(world)

            def rank0():
                yield from h0.send(1, 200 * KB, tag=1)

            def rank1():
                yield from h1.recv(0, 200 * KB, tag=1)

            p0 = engine.spawn(rank0())
            engine.spawn(rank1())
            engine.run(p0)
            return engine.now

        assert transfer_time(8) <= transfer_time(1) * 1.05


class TestPostCosts:
    def test_posts_trap_into_kernel(self, portals):
        world = build_world(portals)
        engine, ctx0, h0, _h1 = make(world)
        out = {}

        def rank0():
            k0 = world.cluster[0].cpu.kernel_time_s
            yield from h0.irecv(1, 100 * KB, tag=1)
            yield from h0.isend(1, 100 * KB, tag=1)
            out["kernel"] = world.cluster[0].cpu.kernel_time_s - k0
            out["user"] = ctx0.user_time_s

        engine.run(engine.spawn(rank0()))
        p = portals.portals
        assert out["kernel"] >= p.isend_trap_s + p.irecv_trap_s
        assert out["user"] == pytest.approx(0.0)
