"""Golden-drift regression: every execution mode reproduces the bits.

``tests/golden_values.json`` was recorded on the pure-Python engine with
no sanitizer attached.  Four modes must reproduce it exactly:

* **pure bare** — the fast paths (burst pump, quiescence) live;
* **pure checked** — the sanitizer attached, which also forces the NICs
  onto the legacy per-packet path: equality proves both that the
  sanitizer is observation-only *and* that the fast paths are bit-exact;
* **compiled bare / compiled checked** — the same two, on the C kernel
  (``COMB_COMPILED=1`` with ``repro._simcore`` built).  The compiled
  axis is a property of the running process, so those legs execute in
  CI's compiled-core job and *skip visibly* when the extension is
  absent.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import compiled
from repro.config import gm_system, portals_system
from repro.core import PointTask, PollingConfig, PwwConfig, SweepExecutor
from repro.patterns import PatternConfig

KB = 1024
GOLDEN_PATH = Path(__file__).parent / "golden_values.json"

#: The fig04 (polling) and fig11 (PWW) canonical points, as recorded.
POLL_CFG = PollingConfig(msg_bytes=100 * KB, poll_interval_iters=1_000,
                         measure_s=0.02, warmup_s=0.004)
PWW_CFG = PwwConfig(msg_bytes=100 * KB, work_interval_iters=100_000,
                    batches=6, warmup_batches=2)

#: The canonical multi-rank pattern points, as recorded (4-rank worlds
#: on the default crossbar; one halo, one allreduce).
HALO_CFG = PatternConfig(pattern="halo2d", ranks=4, msg_bytes=100 * KB,
                         work_interval_iters=100_000, iterations=4,
                         warmup_iterations=1)
ALLREDUCE_CFG = PatternConfig(pattern="allreduce", ranks=4,
                              msg_bytes=100 * KB,
                              work_interval_iters=100_000, iterations=4,
                              warmup_iterations=1)


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def _golden_tasks():
    return [
        PointTask("polling", gm_system(), POLL_CFG),
        PointTask("pww", gm_system(), PWW_CFG),
        PointTask("polling", portals_system(), POLL_CFG),
        PointTask("pww", portals_system(), PWW_CFG),
    ]


@pytest.fixture(scope="module")
def checked():
    """All four golden sweep points simulated under check=True, once."""
    with SweepExecutor(jobs=1, check=True) as ex:
        points = ex.run(_golden_tasks())
    return points, ex.violations


@pytest.fixture(scope="module")
def bare():
    """The same four points on the unchecked fast paths."""
    return SweepExecutor(jobs=1).run(_golden_tasks())


def test_zero_violations_on_golden_points(checked):
    _points, violations = checked
    assert violations == [], violations


@pytest.mark.parametrize("index,key", [
    (0, "GM.polling.100KB.1e3"),
    (2, "Portals.polling.100KB.1e3"),
])
def test_polling_bit_identical_under_check(checked, golden, index, key):
    pt = checked[0][index]
    want = golden[key]
    assert pt.availability == want["availability"]
    assert pt.bandwidth_Bps == want["bandwidth_Bps"]
    assert pt.msgs == want["msgs"]
    assert pt.interrupts == want["interrupts"]


@pytest.mark.parametrize("index,key", [
    (1, "GM.pww.100KB.1e5"),
    (3, "Portals.pww.100KB.1e5"),
])
def test_pww_bit_identical_under_check(checked, golden, index, key):
    pt = checked[0][index]
    want = golden[key]
    assert pt.availability == want["availability"]
    assert pt.bandwidth_Bps == want["bandwidth_Bps"]
    assert (pt.post_s, pt.work_s, pt.wait_s) == (
        want["post_s"], want["work_s"], want["wait_s"])


def test_checked_equals_unchecked_directly():
    """Fast head-to-head on a small config: check=True vs check=False."""
    cfg = PollingConfig(msg_bytes=50 * KB, poll_interval_iters=1_000,
                        measure_s=0.005, warmup_s=0.002, min_cycles=2)
    tasks = [PointTask("polling", gm_system(), cfg)]
    plain = SweepExecutor(jobs=1).run(tasks)
    with SweepExecutor(jobs=1, check=True) as ex:
        checked_pts = ex.run(tasks)
        assert ex.violations == []
    assert checked_pts == plain


# Cross-mode parity (bare vs checked vs traced, pairwise, every golden
# point) lives in tests/test_mode_matrix.py — this module only checks
# each mode against the recorded golden bits.

@pytest.mark.parametrize("key,index,fields", [
    ("GM.polling.100KB.1e3", 0,
     ("availability", "bandwidth_Bps", "msgs", "interrupts")),
    ("GM.pww.100KB.1e5", 1,
     ("availability", "bandwidth_Bps", "post_s", "work_s", "wait_s")),
    ("Portals.polling.100KB.1e3", 2,
     ("availability", "bandwidth_Bps", "msgs", "interrupts")),
    ("Portals.pww.100KB.1e5", 3,
     ("availability", "bandwidth_Bps", "post_s", "work_s", "wait_s")),
])
def test_bare_bit_identical_to_golden(bare, golden, key, index, fields):
    want = golden[key]
    pt = bare[index]
    for f in fields:
        assert getattr(pt, f) == want[f], (key, f)


def test_compiled_core_reproduces_golden(checked, bare, golden):
    """The compiled legs of the matrix: when this process runs on the
    C kernel, the assertions above already executed against it — this
    test makes that leg visible (and visibly skipped when absent)."""
    if not compiled.active():
        pytest.skip(f"compiled core not active ({compiled.status()}); "
                    "pure-Python legs covered above")
    # Running compiled: bare + checked fixtures were produced by the
    # extension modules.  Pin one value end to end as a tripwire.
    want = golden["GM.polling.100KB.1e3"]
    assert bare[0].availability == want["availability"]
    assert checked[0][0].availability == want["availability"]


# --------------------------------------------------------------- patterns
# The N-rank pattern points get their own task list so the original
# four-point matrix above keeps its recorded indices.

def _pattern_tasks():
    return [
        PointTask("pattern", gm_system(), HALO_CFG),
        PointTask("pattern", portals_system(), ALLREDUCE_CFG),
    ]


@pytest.fixture(scope="module")
def pattern_checked():
    """Both golden pattern points simulated under check=True, once."""
    with SweepExecutor(jobs=1, check=True) as ex:
        points = ex.run(_pattern_tasks())
    return points, ex.violations


@pytest.fixture(scope="module")
def pattern_bare():
    """The same two points on the unchecked fast paths."""
    return SweepExecutor(jobs=1).run(_pattern_tasks())


def test_zero_violations_on_pattern_points(pattern_checked):
    _points, violations = pattern_checked
    assert violations == [], violations


@pytest.mark.parametrize("index,key", [
    (0, "GM.pattern.halo2d.4r"),
    (1, "Portals.pattern.allreduce.4r"),
])
def test_pattern_bit_identical_to_golden(pattern_bare, golden, index, key):
    pt = pattern_bare[index]
    want = golden[key]
    assert pt.availability == want["availability"]
    assert pt.bandwidth_Bps == want["bandwidth_Bps"]
    assert pt.msgs == want["msgs"]
    assert pt.interrupts == want["interrupts"]


def test_compiled_core_reproduces_pattern_golden(pattern_bare, golden):
    """Compiled-leg tripwire for the pattern points (CI's compiled job)."""
    if not compiled.active():
        pytest.skip(f"compiled core not active ({compiled.status()}); "
                    "pure-Python legs covered above")
    want = golden["GM.pattern.halo2d.4r"]
    assert pattern_bare[0].availability == want["availability"]


def test_pool_checked_equals_serial_checked():
    """Violations and points both survive the spawn pool."""
    cfg = PollingConfig(msg_bytes=50 * KB, poll_interval_iters=1_000,
                        measure_s=0.005, warmup_s=0.002, min_cycles=2)
    tasks = [
        PointTask("polling", gm_system(), cfg),
        PointTask("polling", portals_system(), cfg),
    ]
    with SweepExecutor(jobs=1, check=True) as serial:
        serial_pts = serial.run(tasks)
    with SweepExecutor(jobs=2, check=True) as pooled:
        pooled_pts = pooled.run(tasks)
        assert pooled.violations == []
    assert pooled_pts == serial_pts
