"""Golden-drift regression: the sanitizer is observation-only.

``SweepExecutor(check=True)`` must produce the *same bits* as the
unchecked path.  The strongest witness we have is the golden value set:
``tests/golden_values.json`` was recorded without the sanitizer, so exact
equality under ``check=True`` proves the sanitizer changed nothing — and
the same runs must report zero violations (the clean-suite guarantee at
the executor level).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.config import gm_system, portals_system
from repro.core import PointTask, PollingConfig, PwwConfig, SweepExecutor

KB = 1024
GOLDEN_PATH = Path(__file__).parent / "golden_values.json"

#: The fig04 (polling) and fig11 (PWW) canonical points, as recorded.
POLL_CFG = PollingConfig(msg_bytes=100 * KB, poll_interval_iters=1_000,
                         measure_s=0.02, warmup_s=0.004)
PWW_CFG = PwwConfig(msg_bytes=100 * KB, work_interval_iters=100_000,
                    batches=6, warmup_batches=2)


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def checked():
    """All four golden sweep points simulated under check=True, once."""
    tasks = [
        PointTask("polling", gm_system(), POLL_CFG),
        PointTask("pww", gm_system(), PWW_CFG),
        PointTask("polling", portals_system(), POLL_CFG),
        PointTask("pww", portals_system(), PWW_CFG),
    ]
    with SweepExecutor(jobs=1, check=True) as ex:
        points = ex.run(tasks)
    return points, ex.violations


def test_zero_violations_on_golden_points(checked):
    _points, violations = checked
    assert violations == [], violations


@pytest.mark.parametrize("index,key", [
    (0, "GM.polling.100KB.1e3"),
    (2, "Portals.polling.100KB.1e3"),
])
def test_polling_bit_identical_under_check(checked, golden, index, key):
    pt = checked[0][index]
    want = golden[key]
    assert pt.availability == want["availability"]
    assert pt.bandwidth_Bps == want["bandwidth_Bps"]
    assert pt.msgs == want["msgs"]
    assert pt.interrupts == want["interrupts"]


@pytest.mark.parametrize("index,key", [
    (1, "GM.pww.100KB.1e5"),
    (3, "Portals.pww.100KB.1e5"),
])
def test_pww_bit_identical_under_check(checked, golden, index, key):
    pt = checked[0][index]
    want = golden[key]
    assert pt.availability == want["availability"]
    assert pt.bandwidth_Bps == want["bandwidth_Bps"]
    assert (pt.post_s, pt.work_s, pt.wait_s) == (
        want["post_s"], want["work_s"], want["wait_s"])


def test_checked_equals_unchecked_directly():
    """Fast head-to-head on a small config: check=True vs check=False."""
    cfg = PollingConfig(msg_bytes=50 * KB, poll_interval_iters=1_000,
                        measure_s=0.005, warmup_s=0.002, min_cycles=2)
    tasks = [PointTask("polling", gm_system(), cfg)]
    plain = SweepExecutor(jobs=1).run(tasks)
    with SweepExecutor(jobs=1, check=True) as ex:
        checked_pts = ex.run(tasks)
        assert ex.violations == []
    assert checked_pts == plain


def test_pool_checked_equals_serial_checked():
    """Violations and points both survive the spawn pool."""
    cfg = PollingConfig(msg_bytes=50 * KB, poll_interval_iters=1_000,
                        measure_s=0.005, warmup_s=0.002, min_cycles=2)
    tasks = [
        PointTask("polling", gm_system(), cfg),
        PointTask("polling", portals_system(), cfg),
    ]
    with SweepExecutor(jobs=1, check=True) as serial:
        serial_pts = serial.run(tasks)
    with SweepExecutor(jobs=2, check=True) as pooled:
        pooled_pts = pooled.run(tasks)
        assert pooled.violations == []
    assert pooled_pts == serial_pts
