"""Golden regression tests.

The simulator is deterministic, so canonical runs must reproduce the
recorded values *exactly* (to float round-trip).  Any intentional change
to timing behaviour — protocol, scheduler, calibration — must regenerate
``tests/golden_values.json`` (see the module-level docstring there is no
script: the generation snippet lives in this file's ``regenerate``
function) and be justified against EXPERIMENTS.md.

This file is also the observability drift gate (the way ``check=True``
is pinned by ``tests/test_verify_golden_drift.py``): the same canonical
measurements re-run with the tracer and metrics registry attached must
be bit-identical to the recorded goldens, proving the observer changed
nothing it observed.
"""

import json
from pathlib import Path

import pytest

from repro.baselines import run_pingpong
from repro.config import gm_system, portals_system
from repro.core import PollingConfig, PwwConfig, run_polling, run_pww
from repro.obs import Observer, use_observer
from repro.patterns import PatternConfig, run_pattern

KB = 1024
GOLDEN_PATH = Path(__file__).parent / "golden_values.json"


def compute_current() -> dict:
    """Re-run the canonical measurements (also the regeneration recipe:
    ``json.dump(compute_current(), open(GOLDEN_PATH, 'w'), indent=2)``)."""
    out = {}
    for name, factory in (("GM", gm_system), ("Portals", portals_system)):
        pt = run_polling(factory(), PollingConfig(
            msg_bytes=100 * KB, poll_interval_iters=1_000,
            measure_s=0.02, warmup_s=0.004,
        ))
        out[f"{name}.polling.100KB.1e3"] = {
            "availability": pt.availability,
            "bandwidth_Bps": pt.bandwidth_Bps,
            "msgs": pt.msgs,
            "interrupts": pt.interrupts,
        }
        pw = run_pww(factory(), PwwConfig(
            msg_bytes=100 * KB, work_interval_iters=100_000,
            batches=6, warmup_batches=2,
        ))
        out[f"{name}.pww.100KB.1e5"] = {
            "availability": pw.availability,
            "bandwidth_Bps": pw.bandwidth_Bps,
            "post_s": pw.post_s,
            "work_s": pw.work_s,
            "wait_s": pw.wait_s,
        }
        pp = run_pingpong(factory(), 100 * KB, repeats=5, warmup_msgs=1)
        out[f"{name}.pingpong.100KB"] = {"latency_s": pp.latency_s}
    # The canonical multi-rank pattern points (4-rank crossbar worlds).
    for name, factory, pattern in (("GM", gm_system, "halo2d"),
                                   ("Portals", portals_system, "allreduce")):
        pt = run_pattern(factory(), PatternConfig(
            pattern=pattern, ranks=4, msg_bytes=100 * KB,
            work_interval_iters=100_000, iterations=4, warmup_iterations=1,
        ))
        out[f"{name}.pattern.{pattern}.4r"] = {
            "availability": pt.availability,
            "bandwidth_Bps": pt.bandwidth_Bps,
            "msgs": pt.msgs,
            "interrupts": pt.interrupts,
        }
    return out


@pytest.fixture(scope="module")
def current():
    return compute_current()


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def test_golden_keys_match(current, golden):
    assert set(current) == set(golden)


@pytest.mark.parametrize("key", [
    "GM.polling.100KB.1e3",
    "GM.pww.100KB.1e5",
    "GM.pingpong.100KB",
    "Portals.polling.100KB.1e3",
    "Portals.pww.100KB.1e5",
    "Portals.pingpong.100KB",
    "GM.pattern.halo2d.4r",
    "Portals.pattern.allreduce.4r",
])
def test_golden_values_exact(current, golden, key):
    for field, expected in golden[key].items():
        measured = current[key][field]
        assert measured == pytest.approx(expected, rel=1e-12), (
            f"{key}.{field}: measured {measured!r} vs golden {expected!r} — "
            f"timing behaviour changed; regenerate goldens if intentional"
        )


# ------------------------------------------------- observability drift gate
@pytest.fixture(scope="module")
def observed():
    """The canonical measurements re-run with the full observability
    layer ambient (tracer + metrics + queue observers), plus the
    observer itself for sanity assertions."""
    observer = Observer()
    with use_observer(observer):
        values = compute_current()
    return values, observer


def test_observed_keys_match(observed, golden):
    values, _observer = observed
    assert set(values) == set(golden)


@pytest.mark.parametrize("key", [
    "GM.polling.100KB.1e3",
    "GM.pww.100KB.1e5",
    "GM.pingpong.100KB",
    "Portals.polling.100KB.1e3",
    "Portals.pww.100KB.1e5",
    "Portals.pingpong.100KB",
    "GM.pattern.halo2d.4r",
    "Portals.pattern.allreduce.4r",
])
def test_observed_values_bit_identical(observed, golden, key):
    """Tracing + metrics attached must change *nothing* it observes:
    every golden value is reproduced exactly, not approximately."""
    values, _observer = observed
    for field, expected in golden[key].items():
        measured = values[key][field]
        assert measured == expected, (
            f"{key}.{field}: observed run measured {measured!r} vs golden "
            f"{expected!r} — the observability layer perturbed the "
            f"simulation; it must be strictly passive"
        )


def test_observed_run_actually_observed(observed):
    """Guard against a silently detached observer making the drift gate
    vacuous: the canonical runs must have produced events and metrics."""
    _values, observer = observed
    counts = observer.tracer.counts()
    assert counts.get("pww_phase"), counts
    assert counts.get("poll") or counts.get("poll_empty"), counts
    assert counts.get("req_post"), counts
    metric_names = observer.metrics.names()
    assert "sim.pww.batches" in metric_names
    assert "sim.poll.misses" in metric_names
