"""Property-based tests over the observability layer.

The ISSUE's named invariants, enforced for arbitrary draws:

* **availability ∈ [0, 1]** on observed runs — and, stronger, observed
  results are *bit-identical* to detached runs for the same draw;
* **phase durations sum to the total PWW iteration time** — the
  ``pww_phase`` trace records tile the run contiguously, agree with the
  driver's own :func:`~repro.core.pww.run_pww_batches` records, and the
  measured phases sum to the point's elapsed window;
* **histogram bucket counts equal event counts** — ``sum(counts) ==
  count`` for arbitrary observation streams, regardless of bounds;
* **trace events are monotone in sim-time per rank** (per source row —
  the property the Chrome export relies on to render sane timelines).

Pure-structure properties run at the profile's full example budget; the
simulation-backed ones cap ``max_examples`` because each example is a
whole cluster run.
"""

import dataclasses
from collections import defaultdict

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import gm_system, portals_system
from repro.core import PollingConfig, PwwConfig, run_polling, run_pww
from repro.core.pww import run_pww_batches
from repro.obs import Gauge, Histogram, Observer, RingBuffer, use_observer

KB = 1024

_systems = st.sampled_from(["GM", "Portals"])
_sizes = st.sampled_from([4 * KB, 16 * KB, 64 * KB])


def _system(name):
    return gm_system() if name == "GM" else portals_system()


# ------------------------------------------------------- structure properties
@given(
    bounds=st.lists(
        st.floats(min_value=1e-9, max_value=1e9,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=12, unique=True,
    ),
    values=st.lists(
        st.floats(min_value=-1e12, max_value=1e12,
                  allow_nan=False, allow_infinity=False),
        max_size=200,
    ),
)
def test_histogram_bucket_counts_equal_event_count(bounds, values):
    """Every observation lands in exactly one bucket: no event is lost,
    none is double-counted, whatever the bounds and stream."""
    hist = Histogram("h", sorted(bounds))
    for v in values:
        hist.observe(v)
    assert sum(hist.counts) == hist.count == len(values)
    # And each count is attributable: bucket i holds values <= bounds[i].
    for i, bound in enumerate(hist.bounds):
        lower = hist.bounds[i - 1] if i else float("-inf")
        expected = sum(1 for v in values if lower < v <= bound)
        assert hist.counts[i] == expected
    assert hist.counts[-1] == sum(1 for v in values if v > hist.bounds[-1])


@given(
    capacity=st.integers(min_value=1, max_value=32),
    n=st.integers(min_value=0, max_value=200),
)
def test_ring_buffer_keeps_newest_and_accounts_all(capacity, n):
    ring = RingBuffer(capacity)
    for i in range(n):
        ring.append(i)
    kept = ring.to_list()
    assert kept == list(range(max(0, n - capacity), n))
    assert len(kept) + ring.dropped == n


@given(values=st.lists(
    st.floats(min_value=-1e9, max_value=1e9,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=100,
))
def test_gauge_watermarks_bound_every_written_value(values):
    g = Gauge("g")
    for v in values:
        g.set(v)
    assert g.min == min(values)
    assert g.max == max(values)
    assert g.value == values[-1]
    assert g.min <= g.value <= g.max


# ------------------------------------------------------ simulation properties
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    name=_systems,
    msg_bytes=_sizes,
    interval=st.integers(min_value=100, max_value=1_000_000),
)
def test_observed_availability_in_range_and_bit_identical(
    name, msg_bytes, interval
):
    cfg = PollingConfig(
        msg_bytes=msg_bytes, poll_interval_iters=interval,
        measure_s=0.004, warmup_s=0.001, min_cycles=2,
    )
    bare = run_polling(_system(name), cfg)
    obs = Observer()
    with use_observer(obs):
        seen = run_polling(_system(name), cfg)
    assert 0.0 <= seen.availability <= 1.0 + 1e-9
    # The observer is strictly passive: same draw, same bits.
    assert dataclasses.asdict(seen) == dataclasses.asdict(bare)
    # Poll accounting covers every completion test the worker made.
    m = obs.metrics
    hits = m.counter("sim.poll.hits").value if "sim.poll.hits" in m else 0
    misses = m.counter("sim.poll.misses").value if "sim.poll.misses" in m else 0
    assert hits + misses > 0


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    name=_systems,
    msg_bytes=_sizes,
    work=st.integers(min_value=0, max_value=1_000_000),
    batch=st.integers(min_value=1, max_value=2),
)
def test_pww_phases_tile_the_run_and_sum_to_elapsed(
    name, msg_bytes, work, batch
):
    cfg = PwwConfig(
        msg_bytes=msg_bytes, work_interval_iters=work, batch_msgs=batch,
        batches=4, warmup_batches=1,
    )
    obs = Observer()
    with use_observer(obs):
        point = run_pww(_system(name), cfg)
    events = obs.tracer.of_kind("pww_phase")
    assert len(events) == cfg.warmup_batches + cfg.batches

    # Contiguity: each batch starts exactly where the previous ended
    # (both are readings of the same engine.now instant, so this is
    # bit-exact), and each record's timestamp is its own cycle end (the
    # phases are stored as *differences*, so re-summing them only
    # recovers the end time to float associativity).
    for prev, ev in zip(events, events[1:]):
        _b, t0_s, post_s, work_s, wait_s = prev.detail
        assert prev.time_s == pytest.approx(
            t0_s + post_s + work_s + wait_s, rel=1e-9, abs=1e-15
        )
        assert ev.detail[1] == prev.time_s
    last = events[-1]
    assert last.time_s == pytest.approx(
        last.detail[1] + sum(last.detail[2:]), rel=1e-9, abs=1e-15
    )

    # Phase durations sum to the total measured iteration time.
    measured = events[cfg.warmup_batches:]
    total_s = sum(sum(ev.detail[2:]) for ev in measured)
    assert total_s == pytest.approx(point.elapsed_s, rel=1e-9)

    # The trace agrees with the driver's own per-batch records
    # (a separate run: determinism makes the comparison exact).
    records = run_pww_batches(_system(name), cfg)
    assert len(records) == len(measured)
    for rec, ev in zip(records, measured):
        _b, _t0_s, post_s, work_s, wait_s = ev.detail
        assert (rec.post_s, rec.work_s, rec.wait_s) == (post_s, work_s, wait_s)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    name=_systems,
    msg_bytes=_sizes,
    method=st.sampled_from(["polling", "pww"]),
)
def test_trace_events_monotone_in_sim_time_per_source(
    name, msg_bytes, method
):
    obs = Observer()
    with use_observer(obs):
        if method == "polling":
            run_polling(_system(name), PollingConfig(
                msg_bytes=msg_bytes, poll_interval_iters=10_000,
                measure_s=0.004, warmup_s=0.001, min_cycles=2,
            ))
        else:
            run_pww(_system(name), PwwConfig(
                msg_bytes=msg_bytes, work_interval_iters=50_000,
                batches=3, warmup_batches=1,
            ))
    by_source = defaultdict(list)
    for ev in obs.events():  # emission order (sorted by seq)
        by_source[ev.source].append(ev.time_s)
    assert by_source, "run produced no events"
    for source, times in by_source.items():
        for earlier, later in zip(times, times[1:]):
            assert later >= earlier, (
                f"{source}: event at {later} precedes {earlier} — "
                f"timeline not monotone in sim-time"
            )
