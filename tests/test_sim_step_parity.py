"""Parity: ``Engine.run()`` is ``Engine.step()`` inlined.

The run loop duplicates :meth:`~repro.sim.engine.Engine.step`'s body for
speed (the simulator's hottest code), which creates a drift hazard: an
edit to one that misses the other would silently fork the semantics.
This test drives a *complete* benchmark scenario — a full polling
measurement with transports, DMA, interrupts, and both fast paths live —
once through ``run()`` and once through a manual ``step()`` loop, and
requires byte-identical measurements and identical event accounting.
"""

from repro.config import gm_system, portals_system
from repro.core.polling import PollingConfig, _support, _WorkerState, _worker
from repro.mpi import build_world
from repro.patterns import PatternConfig
from repro.patterns.runner import _assemble, _rank_proc, build_pattern_world

import pytest

KB = 1024

CFG = PollingConfig(msg_bytes=100 * KB, poll_interval_iters=1_000,
                    measure_s=0.01, warmup_s=0.002, min_cycles=2)


def _run_with(system, stepped: bool):
    world = build_world(system)
    state = _WorkerState()
    worker = world.engine.spawn(_worker(world, CFG, state), name="worker")
    world.engine.spawn(_support(world, CFG), name="support")
    if stepped:
        # run(until=worker) stops after *processing* the worker's
        # termination event; stepping to `triggered` would stop one
        # event short and skew the accounting comparison.
        while not worker.processed:
            world.engine.step()
    else:
        world.engine.run(worker)
    assert state.result is not None
    return state.result, world.engine.events_processed


@pytest.mark.parametrize("factory", [gm_system, portals_system],
                         ids=["gm", "portals"])
def test_stepped_run_is_byte_identical(factory):
    via_run, n_run = _run_with(factory(), stepped=False)
    via_step, n_step = _run_with(factory(), stepped=True)
    assert via_step == via_run
    assert n_step == n_run


def _run_pattern_with(system, cfg, stepped: bool):
    """One multi-rank pattern point, via run() or a manual step() loop."""
    world = build_pattern_world(system, cfg)
    samples = {}
    procs = [
        world.engine.spawn(_rank_proc(world, cfg, rank, samples),
                           name=f"pattern.rank{rank}")
        for rank in range(cfg.ranks)
    ]
    # Both paths drive the same all_of gate: its completion is itself one
    # processed event, so stepping only until the last rank finishes
    # would come up one event short of run()'s accounting.
    gate = world.engine.all_of(procs)
    if stepped:
        while not gate.processed:
            world.engine.step()
    else:
        world.engine.run(gate)
    return _assemble(system, cfg, samples), world.engine.events_processed


@pytest.mark.parametrize("pattern,kwargs", [
    ("halo2d", dict(ranks=4)),
    ("allreduce", dict(ranks=5, algorithm="rd")),
], ids=["halo", "allreduce"])
@pytest.mark.parametrize("factory", [gm_system, portals_system],
                         ids=["gm", "portals"])
def test_stepped_pattern_run_is_byte_identical(factory, pattern, kwargs):
    # The N-rank completion path (all_of) exercises run()'s multi-waiter
    # bookkeeping, which the two-rank polling scenario above never hits.
    cfg = PatternConfig(pattern=pattern, msg_bytes=20 * KB,
                        work_interval_iters=20_000, iterations=3,
                        warmup_iterations=1, **kwargs)
    via_run, n_run = _run_pattern_with(factory(), cfg, stepped=False)
    via_step, n_step = _run_pattern_with(factory(), cfg, stepped=True)
    assert via_step == via_run
    assert n_step == n_run
