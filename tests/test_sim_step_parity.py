"""Parity: ``Engine.run()`` is ``Engine.step()`` inlined.

The run loop duplicates :meth:`~repro.sim.engine.Engine.step`'s body for
speed (the simulator's hottest code), which creates a drift hazard: an
edit to one that misses the other would silently fork the semantics.
This test drives a *complete* benchmark scenario — a full polling
measurement with transports, DMA, interrupts, and both fast paths live —
once through ``run()`` and once through a manual ``step()`` loop, and
requires byte-identical measurements and identical event accounting.
"""

from repro.config import gm_system, portals_system
from repro.core.polling import PollingConfig, _support, _WorkerState, _worker
from repro.mpi import build_world

import pytest

KB = 1024

CFG = PollingConfig(msg_bytes=100 * KB, poll_interval_iters=1_000,
                    measure_s=0.01, warmup_s=0.002, min_cycles=2)


def _run_with(system, stepped: bool):
    world = build_world(system)
    state = _WorkerState()
    worker = world.engine.spawn(_worker(world, CFG, state), name="worker")
    world.engine.spawn(_support(world, CFG), name="support")
    if stepped:
        # run(until=worker) stops after *processing* the worker's
        # termination event; stepping to `triggered` would stop one
        # event short and skew the accounting comparison.
        while not worker.processed:
            world.engine.step()
    else:
        world.engine.run(worker)
    assert state.result is not None
    return state.result, world.engine.events_processed


@pytest.mark.parametrize("factory", [gm_system, portals_system],
                         ids=["gm", "portals"])
def test_stepped_run_is_byte_identical(factory):
    via_run, n_run = _run_with(factory(), stepped=False)
    via_step, n_step = _run_with(factory(), stepped=True)
    assert via_step == via_run
    assert n_step == n_run
