"""Shared fixtures and helpers for the test suite.

Hypothesis runs under one of two named profiles, selected by the
``HYPOTHESIS_PROFILE`` environment variable:

* ``dev`` (default) — few examples, fast local iteration;
* ``ci`` — derandomized (no flaky reruns), more examples, no deadline
  (shared CI runners have noisy wall clocks).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.config import gm_system, portals_system, tcp_system

settings.register_profile(
    "ci",
    derandomize=True,
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", max_examples=25, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def pytest_collection_modifyitems(config, items):
    """Seeded test-order shuffle for environments without pytest-randomly.

    CI installs ``pytest-randomly`` (see the ``test`` extra) and drives it
    with an explicit ``--randomly-seed``; bare environments can still
    exercise order-independence deterministically via
    ``TEST_SHUFFLE_SEED=<int> pytest``.  No-ops when unset or when the
    real plugin is present (it already reordered the items).
    """
    seed = os.environ.get("TEST_SHUFFLE_SEED")
    if not seed or config.pluginmanager.hasplugin("randomly"):
        return
    import random

    random.Random(int(seed)).shuffle(items)

@pytest.fixture
def gm():
    """The GM system preset."""
    return gm_system()


@pytest.fixture
def portals():
    """The Portals system preset."""
    return portals_system()


@pytest.fixture
def tcp():
    """The TCP system preset."""
    return tcp_system()


@pytest.fixture(params=["GM", "Portals"], ids=["gm", "portals"])
def either_system(request):
    """Parametrized over the paper's two measured systems."""
    return gm_system() if request.param == "GM" else portals_system()


def run_pair(world, gen0, gen1, until=None):
    """Spawn one generator per rank and run until ``gen0`` finishes."""
    p0 = world.engine.spawn(gen0, name="rank0")
    world.engine.spawn(gen1, name="rank1")
    return world.engine.run(until if until is not None else p0)


KB = 1024
