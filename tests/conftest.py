"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.config import gm_system, portals_system, tcp_system

@pytest.fixture
def gm():
    """The GM system preset."""
    return gm_system()


@pytest.fixture
def portals():
    """The Portals system preset."""
    return portals_system()


@pytest.fixture
def tcp():
    """The TCP system preset."""
    return tcp_system()


@pytest.fixture(params=["GM", "Portals"], ids=["gm", "portals"])
def either_system(request):
    """Parametrized over the paper's two measured systems."""
    return gm_system() if request.param == "GM" else portals_system()


def run_pair(world, gen0, gen1, until=None):
    """Spawn one generator per rank and run until ``gen0`` finishes."""
    p0 = world.engine.spawn(gen0, name="rank0")
    world.engine.spawn(gen1, name="rank1")
    return world.engine.run(until if until is not None else p0)


KB = 1024
