"""Tests: the polling method driver (COMB §2.1)."""

import dataclasses

import pytest

from repro.core.polling import PollingConfig, run_polling
from repro.core.workloop import dry_run_iter_time, work_time

KB = 1024

FAST = dict(measure_s=0.02, warmup_s=0.003, min_cycles=4)


class TestValidation:
    def test_bad_interval(self, gm):
        with pytest.raises(ValueError):
            run_polling(gm, PollingConfig(poll_interval_iters=0))

    def test_bad_queue_depth(self, gm):
        with pytest.raises(ValueError):
            run_polling(gm, PollingConfig(queue_depth=0))


class TestInvariants:
    @pytest.mark.parametrize("interval", [100, 100_000, 10_000_000])
    def test_availability_in_unit_range(self, either_system, interval):
        pt = run_polling(either_system, PollingConfig(
            msg_bytes=100 * KB, poll_interval_iters=interval, **FAST,
        ))
        assert 0.0 <= pt.availability <= 1.0 + 1e-9

    def test_bandwidth_bounded_by_bus(self, either_system):
        pt = run_polling(either_system, PollingConfig(
            msg_bytes=100 * KB, poll_interval_iters=1_000, **FAST,
        ))
        bus = either_system.machine.nic.host_dma_bandwidth_Bps
        # Aggregate payload cannot exceed the shared host-bus rate.
        assert pt.bandwidth_Bps <= bus * 1.01

    def test_point_metadata(self, gm):
        pt = run_polling(gm, PollingConfig(
            msg_bytes=50 * KB, poll_interval_iters=500, **FAST,
        ))
        assert pt.system == "GM"
        assert pt.msg_bytes == 50 * KB
        assert pt.poll_interval_iters == 500
        assert pt.elapsed_s > 0
        assert pt.polls > 0
        assert pt.iters > 0
        assert pt.msgs > 0

    def test_gm_has_no_interrupts(self, gm):
        pt = run_polling(gm, PollingConfig(
            msg_bytes=100 * KB, poll_interval_iters=1_000, **FAST,
        ))
        assert pt.interrupts == 0

    def test_portals_has_interrupts(self, portals):
        pt = run_polling(portals, PollingConfig(
            msg_bytes=100 * KB, poll_interval_iters=1_000, **FAST,
        ))
        assert pt.interrupts > 0


class TestShapes:
    def test_availability_rises_with_interval(self, either_system):
        lo = run_polling(either_system, PollingConfig(
            msg_bytes=100 * KB, poll_interval_iters=100, **FAST,
        ))
        hi = run_polling(either_system, PollingConfig(
            msg_bytes=100 * KB, poll_interval_iters=50_000_000, **FAST,
        ))
        assert hi.availability > lo.availability
        assert hi.availability > 0.9

    def test_bandwidth_collapses_at_huge_interval(self, either_system):
        plateau = run_polling(either_system, PollingConfig(
            msg_bytes=100 * KB, poll_interval_iters=1_000, **FAST,
        ))
        starved = run_polling(either_system, PollingConfig(
            msg_bytes=100 * KB, poll_interval_iters=50_000_000, **FAST,
        ))
        assert starved.bandwidth_Bps < 0.2 * plateau.bandwidth_Bps

    def test_queue_depth_one_degenerates_to_pingpong(self, gm):
        deep = run_polling(gm, PollingConfig(
            msg_bytes=100 * KB, poll_interval_iters=1_000, queue_depth=4,
            **FAST,
        ))
        shallow = run_polling(gm, PollingConfig(
            msg_bytes=100 * KB, poll_interval_iters=1_000, queue_depth=1,
            **FAST,
        ))
        # The paper: depth 1 sacrifices maximum sustained bandwidth.
        assert shallow.bandwidth_Bps < deep.bandwidth_Bps

    def test_gm_10kb_availability_penalty(self, gm):
        """§4.2: eager sends cost ~45 µs, depressing availability at
        10 KB relative to rendezvous sizes at the same interval."""
        small = run_polling(gm, PollingConfig(
            msg_bytes=10 * KB, poll_interval_iters=1_000, **FAST,
        ))
        large = run_polling(gm, PollingConfig(
            msg_bytes=100 * KB, poll_interval_iters=1_000, **FAST,
        ))
        assert small.availability < large.availability - 0.15


class TestDeterminism:
    def test_identical_runs_identical_results(self, portals):
        cfg = PollingConfig(msg_bytes=100 * KB, poll_interval_iters=3_000,
                            **FAST)
        a = run_polling(portals, cfg)
        b = run_polling(portals, cfg)
        assert a.to_dict() == b.to_dict()


class TestWorkloop:
    def test_dry_run_matches_config(self, gm):
        measured = dry_run_iter_time(gm)
        assert measured == pytest.approx(gm.machine.cpu.work_iter_s)

    def test_work_time_linear(self, gm):
        assert work_time(gm, 1_000_000) == pytest.approx(
            1_000_000 * gm.machine.cpu.work_iter_s
        )
