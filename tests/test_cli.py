"""Tests: the ``comb`` command-line interface."""

import json

import pytest

from repro.cli import main


class TestPointCommands:
    def test_polling(self, capsys):
        rc = main(["polling", "--system", "GM", "--size", "100",
                   "--interval", "10000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "availability" in out and "bandwidth" in out

    def test_pww(self, capsys):
        rc = main(["pww", "--system", "Portals", "--size", "100",
                   "--interval", "100000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "post" in out and "wait" in out

    def test_pww_with_tests_in_work(self, capsys):
        rc = main(["pww", "--system", "GM", "--interval", "1000000",
                   "--tests-in-work", "1"])
        assert rc == 0

    def test_offload(self, capsys):
        rc = main(["offload", "--system", "Portals"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "provides application offload" in out

    def test_netperf(self, capsys):
        rc = main(["netperf", "--system", "GM", "--mode", "busywait"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "availability" in out


class TestFiguresCommand:
    def test_single_figure_with_export(self, capsys, tmp_path):
        rc = main(["figures", "--ids", "fig13", "--out", str(tmp_path),
                   "--no-plots"])
        out = capsys.readouterr().out
        assert rc == 0
        assert (tmp_path / "fig13.csv").exists()
        data = json.loads((tmp_path / "fig13.json").read_text())
        assert data["fig_id"] == "fig13"
        assert "[PASS]" in out

    def test_plots_rendered_by_default(self, capsys):
        rc = main(["figures", "--ids", "fig13", "--per-decade", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Work Interval" in out


class TestMetricsFlag:
    def test_figures_metrics_writes_sidecar(self, capsys, tmp_path):
        # --no-cache forces simulation so sim-level metrics are present
        # regardless of the developer's .comb_cache state.
        rc = main(["figures", "--ids", "fig13", "--out", str(tmp_path),
                   "--no-plots", "--metrics", "--no-cache"])
        out = capsys.readouterr().out
        assert rc == 0
        doc = json.loads((tmp_path / "metrics.json").read_text())
        assert "schema_version" in doc
        assert "sim.pww.batches" in doc["metrics"]["counters"]
        assert "executor.points_simulated" in doc["metrics"]["counters"]
        assert doc["executor"]["misses"] > 0  # hit/miss stats merged in
        assert "metrics.json" in out

    def test_figures_metrics_values_unchanged(self, capsys, tmp_path):
        main(["figures", "--ids", "fig13", "--out", str(tmp_path),
              "--no-plots"])
        plain = json.loads((tmp_path / "fig13.json").read_text())
        main(["figures", "--ids", "fig13", "--out", str(tmp_path),
              "--no-plots", "--metrics"])
        observed = json.loads((tmp_path / "fig13.json").read_text())
        capsys.readouterr()
        assert observed == plain


class TestTraceCommand:
    def test_trace_pww_point_exports_all_three(self, capsys, tmp_path):
        rc = main(["trace", "pww", "--system", "GM", "--size", "32",
                   "--interval", "10000", "--out", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        trace = json.loads((tmp_path / "pww.trace.json").read_text())
        assert trace["otherData"]["schema_version"] >= 1
        phases = {ev["ph"] for ev in trace["traceEvents"]}
        assert {"M", "X"} <= phases  # metadata + pww slices
        assert (tmp_path / "pww.timeline.csv").exists()
        metrics = json.loads((tmp_path / "pww.metrics.json").read_text())
        assert metrics["metrics"]["counters"]["sim.pww.batches"] > 0
        assert "trace" in out.lower() or str(tmp_path) in out

    def test_trace_polling_point(self, capsys, tmp_path):
        rc = main(["trace", "polling", "--system", "Portals", "--size", "64",
                   "--interval", "10000", "--out", str(tmp_path)])
        capsys.readouterr()
        assert rc == 0
        metrics = json.loads((tmp_path / "polling.metrics.json").read_text())
        counters = metrics["metrics"]["counters"]
        assert counters.get("sim.poll.hits", 0) > 0

    def test_trace_figure(self, capsys, tmp_path):
        rc = main(["trace", "fig13", "--out", str(tmp_path)])
        capsys.readouterr()
        assert rc == 0
        trace = json.loads((tmp_path / "fig13.trace.json").read_text())
        assert len(trace["traceEvents"]) > 0
        metrics = json.loads((tmp_path / "fig13.metrics.json").read_text())
        assert "executor.points_simulated" in metrics["metrics"]["counters"]

    def test_trace_unknown_target(self, capsys, tmp_path):
        rc = main(["trace", "fig99", "--out", str(tmp_path)])
        err_or_out = capsys.readouterr()
        assert rc == 2
        assert "unknown trace target" in err_or_out.out + err_or_out.err


class TestParsing:
    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            main(["polling", "--system", "Elan"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
