"""Tests: the ``comb`` command-line interface."""

import json

import pytest

from repro.cli import main


class TestPointCommands:
    def test_polling(self, capsys):
        rc = main(["polling", "--system", "GM", "--size", "100",
                   "--interval", "10000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "availability" in out and "bandwidth" in out

    def test_pww(self, capsys):
        rc = main(["pww", "--system", "Portals", "--size", "100",
                   "--interval", "100000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "post" in out and "wait" in out

    def test_pww_with_tests_in_work(self, capsys):
        rc = main(["pww", "--system", "GM", "--interval", "1000000",
                   "--tests-in-work", "1"])
        assert rc == 0

    def test_offload(self, capsys):
        rc = main(["offload", "--system", "Portals"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "provides application offload" in out

    def test_netperf(self, capsys):
        rc = main(["netperf", "--system", "GM", "--mode", "busywait"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "availability" in out


class TestFiguresCommand:
    def test_single_figure_with_export(self, capsys, tmp_path):
        rc = main(["figures", "--ids", "fig13", "--out", str(tmp_path),
                   "--no-plots"])
        out = capsys.readouterr().out
        assert rc == 0
        assert (tmp_path / "fig13.csv").exists()
        data = json.loads((tmp_path / "fig13.json").read_text())
        assert data["fig_id"] == "fig13"
        assert "[PASS]" in out

    def test_plots_rendered_by_default(self, capsys):
        rc = main(["figures", "--ids", "fig13", "--per-decade", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Work Interval" in out


class TestParsing:
    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            main(["polling", "--system", "Elan"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
