"""Unit tests: generator processes."""

import pytest

from repro.sim import (
    Engine,
    ProcessInterrupt,
    SimulationError,
    StopProcess,
)


@pytest.fixture
def engine():
    return Engine()


class TestLifecycle:
    def test_return_value_becomes_event_value(self, engine):
        def proc():
            yield engine.timeout(1.0)
            return "result"

        p = engine.spawn(proc())
        assert engine.run(p) == "result"

    def test_process_is_alive_until_done(self, engine):
        def proc():
            yield engine.timeout(1.0)

        p = engine.spawn(proc())
        assert p.is_alive
        engine.run(p)
        assert not p.is_alive

    def test_immediate_return(self, engine):
        def proc():
            return "now"
            yield  # pragma: no cover

        p = engine.spawn(proc())
        assert engine.run(p) == "now"

    def test_stop_process_exception(self, engine):
        def proc():
            yield engine.timeout(1.0)
            raise StopProcess("early")
            yield engine.timeout(1.0)  # pragma: no cover

        p = engine.spawn(proc())
        assert engine.run(p) == "early"
        assert engine.now == 1.0

    def test_exception_propagates_to_waiter(self, engine):
        def bad():
            yield engine.timeout(1.0)
            raise ValueError("inner")

        def waiter():
            try:
                yield engine.spawn(bad())
            except ValueError as exc:
                return f"caught {exc}"

        p = engine.spawn(waiter())
        assert engine.run(p) == "caught inner"

    def test_unhandled_process_exception_surfaces(self, engine):
        def bad():
            yield engine.timeout(1.0)
            raise ValueError("unhandled")

        engine.spawn(bad())
        with pytest.raises(ValueError, match="unhandled"):
            engine.run()

    def test_non_event_yield_raises_into_generator(self, engine):
        def proc():
            with pytest.raises(SimulationError):
                yield 42
            return "recovered"

        p = engine.spawn(proc())
        assert engine.run(p) == "recovered"


class TestWaiting:
    def test_processes_wait_on_each_other(self, engine):
        def child():
            yield engine.timeout(2.0)
            return 7

        def parent():
            value = yield engine.spawn(child())
            return value * 3

        p = engine.spawn(parent())
        assert engine.run(p) == 21

    def test_yield_from_delegation(self, engine):
        def inner():
            yield engine.timeout(1.0)
            return "deep"

        def outer():
            value = yield from inner()
            return value.upper()

        p = engine.spawn(outer())
        assert engine.run(p) == "DEEP"

    def test_waiting_on_already_done_process(self, engine):
        def quick():
            return 5
            yield  # pragma: no cover

        child = engine.spawn(quick())
        engine.run(child)

        def late():
            value = yield child
            return value

        p = engine.spawn(late())
        assert engine.run(p) == 5

    def test_two_waiters_same_event(self, engine):
        ev = engine.timeout(1.0, "shared")
        results = []

        def waiter(tag):
            value = yield ev
            results.append((tag, value))

        engine.spawn(waiter("a"))
        engine.spawn(waiter("b"))
        engine.run()
        assert sorted(results) == [("a", "shared"), ("b", "shared")]


class TestInterrupt:
    def test_interrupt_delivers_cause(self, engine):
        def proc():
            try:
                yield engine.timeout(10.0)
            except ProcessInterrupt as exc:
                return ("interrupted", exc.cause)

        p = engine.spawn(proc())
        engine.schedule_callback(1.0, lambda: p.interrupt("why"))
        assert engine.run(p) == ("interrupted", "why")
        assert engine.now == 1.0

    def test_interrupt_detaches_from_old_target(self, engine):
        order = []

        def proc():
            try:
                yield engine.timeout(5.0)
            except ProcessInterrupt:
                order.append("intr")
            yield engine.timeout(1.0)
            order.append("resumed")

        p = engine.spawn(proc())
        engine.schedule_callback(1.0, lambda: p.interrupt())
        engine.run(p)
        assert order == ["intr", "resumed"]
        assert engine.now == 2.0

    def test_interrupt_finished_process_rejected(self, engine):
        def proc():
            return None
            yield  # pragma: no cover

        p = engine.spawn(proc())
        engine.run(p)
        with pytest.raises(SimulationError):
            p.interrupt()
