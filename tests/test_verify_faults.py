"""Tests: deterministic fault injection trips the matching monitor.

Each fault class is injected into a scripted, otherwise-quiescent
scenario and must be (a) actually injected and (b) reported by the
monitor designed for it — the detection table in
:mod:`repro.verify.faults`.  A Hypothesis property pins the determinism
contract: one seed, one exact injection trace.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import gm_system, portals_system
from repro.mpi.world import build_world
from repro.verify import FaultInjector, FaultPlan, Sanitizer, use_sanitizer

KB = 1024


def small_token_gm():
    """GM with per-message token returns, so credit faults bite quickly."""
    system = gm_system()
    return dataclasses.replace(
        system, gm=dataclasses.replace(system.gm, eager_token_batch=1)
    )


def run_faulted(system, plan, msg_bytes=64 * KB, n_msgs=4, quiescent=True,
                extra_recv=False):
    """One-directional stream of ``n_msgs``, fully waited, under ``plan``.

    ``extra_recv`` posts one receive nothing ever matches (the target a
    spurious completion needs).
    """
    san = Sanitizer(quiescent=quiescent)
    with use_sanitizer(san):
        world = build_world(system)
    injector = FaultInjector(world, plan).install()
    h0 = world.endpoint(0).bind(world.cluster[0].new_context("tx"))
    h1 = world.endpoint(1).bind(world.cluster[1].new_context("rx"))

    def tx():
        for i in range(n_msgs):
            yield from h0.send(1, msg_bytes, tag=i)

    def rx():
        for i in range(n_msgs):
            yield from h1.recv(0, msg_bytes, tag=i)
        if extra_recv:
            yield from h1.recv(0, msg_bytes, tag=999)

    world.engine.spawn(tx(), name="tx")
    world.engine.spawn(rx(), name="rx")
    world.engine.run()  # drain; corrupted runs may leave state behind
    san.finalize()
    return san, injector


def kinds(san):
    return {v.kind for v in san.violations}


# -------------------------------------------------------- per-class detection
class TestDetection:
    def test_drop_data_breaks_conservation(self):
        # GM has no reliability layer: a dropped fragment is unrecoverable.
        san, inj = run_faulted(
            gm_system(), FaultPlan(seed=7, drop_data=0.3, max_per_class=1)
        )
        assert inj.injected["drop"] == 1
        assert kinds(san) & {"packet_lost", "request_never_completed"}

    def test_duplicate_data_breaks_conservation_gm(self):
        san, inj = run_faulted(
            gm_system(), FaultPlan(seed=7, duplicate_data=0.3, max_per_class=1)
        )
        assert inj.injected["dup"] == 1
        assert "packet_duplicated" in kinds(san)

    def test_duplicate_data_breaks_conservation_portals(self):
        san, inj = run_faulted(
            portals_system(),
            FaultPlan(seed=11, duplicate_data=0.3, max_per_class=1),
        )
        assert inj.injected["dup"] == 1
        assert "packet_duplicated" in kinds(san)

    def test_timewarp_breaks_causality(self):
        san, inj = run_faulted(
            gm_system(), FaultPlan(seed=7, timewarp=0.3, max_per_class=1)
        )
        assert inj.injected["timewarp"] == 1
        assert kinds(san) & {"scheduled_in_past", "clock_backwards"}

    def test_dropped_ack_leaks_tokens(self):
        san, inj = run_faulted(
            small_token_gm(),
            FaultPlan(seed=7, drop_ack=1.0, max_per_class=2),
            msg_bytes=1 * KB, n_msgs=8,
        )
        assert inj.injected["drop_ack"] == 2
        assert "token_leak" in kinds(san)

    def test_duplicated_ack_overflows_tokens(self):
        san, inj = run_faulted(
            small_token_gm(),
            FaultPlan(seed=7, duplicate_ack=1.0, max_per_class=2),
            msg_bytes=1 * KB, n_msgs=8,
        )
        assert inj.injected["dup_ack"] == 2
        assert "token_overflow" in kinds(san)

    def test_nic_stall_strands_requests(self):
        san, inj = run_faulted(
            gm_system(),
            FaultPlan(seed=7, nic_stall_node=0, nic_stall_after=2),
        )
        assert inj.injected["nic_stall"] >= 1
        assert "request_never_completed" in kinds(san)

    def test_deferred_irq_leaves_rts_unanswered(self):
        # Losing the Portals RTS interrupt wedges the long-message
        # handshake: the sender's _pending_get entry never clears.
        san, inj = run_faulted(
            portals_system(),
            FaultPlan(seed=7, defer_irq_node=1, defer_irq_label="portals_rts"),
        )
        assert inj.injected["defer_irq"] >= 1
        assert "unanswered_rts" in kinds(san)

    def test_spurious_completion_breaks_lifecycle(self):
        san, inj = run_faulted(
            portals_system(),
            FaultPlan(seed=3, spurious_completion_at=0.05),
            n_msgs=2, quiescent=False, extra_recv=True,
        )
        assert inj.injected["spurious_completion"] == 1
        assert "completed_while_posted" in kinds(san)

    def test_fault_free_plan_is_clean(self):
        san, inj = run_faulted(gm_system(), FaultPlan(seed=7))
        assert sum(inj.injected.values()) == 0
        assert san.violations == []


# -------------------------------------------------------------- determinism
def _injection_trace(seed, rate):
    """Full (class -> count) injection outcome plus the violation kinds."""
    san, inj = run_faulted(
        gm_system(),
        FaultPlan(seed=seed, drop_data=rate, duplicate_data=rate,
                  max_per_class=2),
        msg_bytes=64 * KB, n_msgs=3,
    )
    return dict(inj.injected), sorted(v.kind for v in san.violations)


class TestDeterminism:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           rate=st.sampled_from([0.1, 0.5, 1.0]))
    def test_same_seed_same_faults_same_verdict(self, seed, rate):
        """A violation report reproduces from its seed alone."""
        assert _injection_trace(seed, rate) == _injection_trace(seed, rate)

    def test_different_seeds_eventually_differ(self):
        traces = {str(_injection_trace(seed, 0.5)) for seed in range(4)}
        assert len(traces) > 1, "seed has no effect on injection choices"

    def test_max_per_class_caps_injections(self):
        _san, inj = run_faulted(
            gm_system(), FaultPlan(seed=1, drop_data=1.0, max_per_class=3),
            msg_bytes=64 * KB, n_msgs=4,
        )
        assert inj.injected["drop"] == 3

    def test_install_is_idempotent(self):
        system = gm_system()
        san = Sanitizer(quiescent=True)
        with use_sanitizer(san):
            world = build_world(system)
        inj = FaultInjector(world, FaultPlan(seed=1, drop_data=1.0,
                                             max_per_class=1))
        assert inj.install() is inj.install()


# ---------------------------------------------------- injector trace records
class TestFaultRecords:
    def test_faults_emit_trace_records(self):
        """Each injection is visible in the record stream (fault_* kinds),
        so a corrupted run is diagnosable from its trace alone."""
        seen = []

        class Spy(Sanitizer):
            def dispatch(self, rec):
                seen.append(rec.kind)
                super().dispatch(rec)

        san = Spy(quiescent=True)
        with use_sanitizer(san):
            world = build_world(gm_system())
        FaultInjector(
            world, FaultPlan(seed=7, drop_data=0.3, max_per_class=1)
        ).install()
        h0 = world.endpoint(0).bind(world.cluster[0].new_context("tx"))
        h1 = world.endpoint(1).bind(world.cluster[1].new_context("rx"))

        def tx():
            yield from h0.send(1, 64 * KB, tag=0)

        def rx():
            yield from h1.recv(0, 64 * KB, tag=0)

        world.engine.spawn(tx(), name="tx")
        world.engine.spawn(rx(), name="rx")
        world.engine.run()
        assert "fault_drop" in seen
