"""Exporters on degenerate runs (empty / single-event / all-dropped).

Every export must stay schema-valid (schema_version=1) no matter how
little survived the ring buffers, and truncation must be self-described
in every format, not just the metrics sidecar.
"""

import csv
import json

import pytest

from repro.obs import (
    ObsTracer,
    TRACE_SCHEMA_VERSION,
    chrome_trace,
    write_chrome_trace,
    write_csv_timeline,
    write_metrics,
)
from repro.obs.tracer import ObsEvent

SINGLE = [ObsEvent(0, 1e-6, "rank0.pww", "poll", (0,))]


def _all_dropped_tracer():
    """A tracer whose single-slot rings evicted all but the newest event."""
    tracer = ObsTracer(ring_capacity=1)
    for i in range(5):
        tracer.record(i * 1e-6, "node0.nic", "packet_tx", ("data", i, 0))
    return tracer


# ------------------------------------------------------------- chrome trace
@pytest.mark.parametrize("events", [[], SINGLE], ids=["empty", "single"])
def test_chrome_trace_degenerate_schema(events):
    doc = chrome_trace(events)
    assert doc["otherData"]["schema_version"] == TRACE_SCHEMA_VERSION
    assert isinstance(doc["traceEvents"], list)
    # process_name metadata is always present, even with zero events.
    assert doc["traceEvents"][0]["ph"] == "M"


def test_chrome_trace_all_dropped_self_describing(tmp_path):
    tracer = _all_dropped_tracer()
    assert len(tracer.events()) == 1
    path = write_chrome_trace(tracer.events(), tmp_path / "t.trace.json",
                              dropped=tracer.dropped())
    doc = json.loads(path.read_text())
    assert doc["otherData"]["schema_version"] == TRACE_SCHEMA_VERSION
    assert doc["otherData"]["dropped_events"] == {"packet_tx": 4}
    drops = [e for e in doc["traceEvents"]
             if e.get("name", "").startswith("dropped.")]
    assert len(drops) == 1
    assert drops[0]["args"]["dropped"] == 4


def test_chrome_trace_empty_dropped_dict(tmp_path):
    path = write_chrome_trace([], tmp_path / "t.trace.json", dropped={})
    doc = json.loads(path.read_text())
    assert doc["otherData"]["dropped_events"] == {}
    assert not any(e.get("name", "").startswith("dropped.")
                   for e in doc["traceEvents"])


def test_chrome_trace_no_dropped_arg_backcompat(tmp_path):
    path = write_chrome_trace(SINGLE, tmp_path / "t.trace.json")
    doc = json.loads(path.read_text())
    assert "dropped_events" not in doc["otherData"]


# -------------------------------------------------------------------- CSV
@pytest.mark.parametrize("events", [[], SINGLE], ids=["empty", "single"])
def test_csv_degenerate_has_header(tmp_path, events):
    path = write_csv_timeline(events, tmp_path / "t.csv")
    rows = list(csv.reader(path.open()))
    assert rows[0] == ["seq", "time_s", "source", "kind", "detail"]
    assert len(rows) == 1 + len(events)


def test_csv_all_dropped_trailer_rows(tmp_path):
    tracer = _all_dropped_tracer()
    path = write_csv_timeline(tracer.events(), tmp_path / "t.csv",
                              dropped=tracer.dropped())
    rows = list(csv.reader(path.open()))
    trailer = rows[-1]
    assert trailer[0] == "-1"
    assert trailer[2] == "obs.tracer"
    assert trailer[3] == "dropped"
    assert json.loads(trailer[4]) == {"kind": "packet_tx", "dropped": 4}


# ---------------------------------------------------------------- metrics
def test_metrics_sidecar_empty_registry(tmp_path):
    from repro.obs import MetricsRegistry

    path = write_metrics(MetricsRegistry(), tmp_path / "metrics.json")
    doc = json.loads(path.read_text())
    assert doc["schema_version"] == TRACE_SCHEMA_VERSION
    assert doc["metrics"] == {"counters": {}, "gauges": {}, "histograms": {}}


# ------------------------------------------------------- directory creation
def test_exports_create_parent_dirs(tmp_path):
    deep = tmp_path / "a" / "b" / "c"
    assert write_chrome_trace([], deep / "t.trace.json").exists()
    assert write_csv_timeline([], deep / "t.csv").exists()


def test_trace_cli_unwritable_target_one_line_error(tmp_path, capsys):
    """`comb trace` on an unwritable --out prints one line, no traceback."""
    from repro.cli import main

    blocker = tmp_path / "blocked"
    blocker.write_text("a file where a directory must go")
    code = main(["trace", "pww", "--system", "GM", "--size", "1",
                 "--interval", "1000", "--out",
                 str(blocker / "sub")])
    assert code == 1
    err = capsys.readouterr().err
    assert err.startswith("error: cannot write trace output")
    assert "Traceback" not in err
