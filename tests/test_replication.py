"""Replicated measurement end to end: executor, cache, registry, CLI.

The load-bearing contract is **bit-identity with replication disabled**:
``reps=1`` routes through exactly the pre-replication executor, so the
full golden suite reproduces ``tests/golden_values.json`` unchanged
(satellite of PR 9).  On top of that, deterministic replicated runs must
report zero disagreements, zero-width CIs, and identical summaries
across invocations; stochastic runs (fault injection armed) get genuine
intervals; and the figure registry's ``*_ci`` variants render bands.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.config import gm_system, portals_system
from repro.core import PointTask, PollingConfig, SweepExecutor
from repro.scenario import run_scenario
from repro.stats import STOP_CI_WIDTH, STOP_FIXED

from tests.test_verify_golden_drift import (
    ALLREDUCE_CFG,
    GOLDEN_PATH,
    HALO_CFG,
    POLL_CFG,
    PWW_CFG,
)

KB = 1024

#: Every recorded point task, keyed by its golden entry.
GOLDEN_FIELDS = {
    "GM.polling.100KB.1e3": ("availability", "bandwidth_Bps",
                             "msgs", "interrupts"),
    "GM.pww.100KB.1e5": ("availability", "bandwidth_Bps",
                         "post_s", "work_s", "wait_s"),
    "Portals.polling.100KB.1e3": ("availability", "bandwidth_Bps",
                                  "msgs", "interrupts"),
    "Portals.pww.100KB.1e5": ("availability", "bandwidth_Bps",
                              "post_s", "work_s", "wait_s"),
    "GM.pattern.halo2d.4r": ("availability", "bandwidth_Bps",
                             "msgs", "interrupts"),
    "Portals.pattern.allreduce.4r": ("availability", "bandwidth_Bps",
                                     "msgs", "interrupts"),
}


def _golden_tasks():
    return [
        PointTask("polling", gm_system(), POLL_CFG),
        PointTask("pww", gm_system(), PWW_CFG),
        PointTask("polling", portals_system(), POLL_CFG),
        PointTask("pww", portals_system(), PWW_CFG),
        PointTask("pattern", gm_system(), HALO_CFG),
        PointTask("pattern", portals_system(), ALLREDUCE_CFG),
    ]


#: Quick full-path polling point for replicated runs (sub-second).
QUICK_CFG = PollingConfig(msg_bytes=50 * KB, poll_interval_iters=1_000,
                          measure_s=0.005, warmup_s=0.002, min_cycles=2)
QUICK_TASK = PointTask("polling", gm_system(), QUICK_CFG)


def _stochastic_system(seed=7, rate=0.02):
    system = portals_system()
    fault = dataclasses.replace(system.machine.fault, data_loss_rate=rate)
    machine = dataclasses.replace(system.machine, fault=fault)
    return dataclasses.replace(system, machine=machine, seed=seed)


# ---------------------------------------------------- reps=1 bit-identity
def test_reps1_golden_suite_unchanged():
    """The full golden suite through the replicated code path with
    replication disabled is bit-identical to the recorded goldens."""
    golden = json.loads(GOLDEN_PATH.read_text())
    points = SweepExecutor(jobs=1, reps=1).run(_golden_tasks())
    for point, (key, fields) in zip(points, GOLDEN_FIELDS.items()):
        for f in fields:
            assert getattr(point, f) == golden[key][f], (key, f)
        assert point.replication is None
        assert "replication" not in point.to_dict()


def test_reps1_equals_single_shot():
    single = SweepExecutor(jobs=1).run([QUICK_TASK])[0]
    via_reps = SweepExecutor(jobs=1).run([QUICK_TASK], reps=1)[0]
    assert via_reps == single


# ------------------------------------------------- deterministic replication
@pytest.fixture(scope="module")
def replicated():
    """The quick point replicated (reps=3) plus its single-shot twin."""
    single = SweepExecutor(jobs=1).run([QUICK_TASK])[0]
    ex = SweepExecutor(jobs=1)
    point = ex.run([QUICK_TASK], reps=3)[0]
    return single, point, ex


def test_replicated_base_fields_match_single_shot(replicated):
    single, point, _ex = replicated
    assert dataclasses.replace(point, replication=None) == single


def test_replicated_zero_disagreements_and_zero_width_ci(replicated):
    _single, point, ex = replicated
    assert ex.disagreements == []
    summary = point.replication
    assert summary["reps"] == 3
    assert summary["disagreements"] == 0
    assert summary["stopping_reason"] == STOP_FIXED
    for name, m in summary["metrics"].items():
        assert m["ci_low"] == m["ci_high"] == m["median"], name
        assert m["min"] == m["max"] == m["mean"], name
        assert m["std"] == 0.0, name


def test_replication_summary_identical_across_invocations(replicated):
    _single, point, _ex = replicated
    again = SweepExecutor(jobs=1).run([QUICK_TASK], reps=3)[0]
    assert again.to_dict() == point.to_dict()


def test_adaptive_stopping_on_deterministic_point():
    """Zero-width CI at min_reps: adaptive designs stop at 3, not 8."""
    point = SweepExecutor(jobs=1).run([QUICK_TASK], reps=8,
                                      ci_width=0.01)[0]
    assert point.replication["reps"] == 3
    assert point.replication["stopping_reason"] == STOP_CI_WIDTH


def test_duplicate_tasks_share_replicates():
    ex = SweepExecutor(jobs=1)
    a, b = ex.run([QUICK_TASK, QUICK_TASK], reps=3)
    assert a == b
    assert a is not b


# ---------------------------------------------------------------- caching
def test_warm_cache_feeds_replicated_runs(tmp_path):
    """Raw replicates are cached individually: a second replicated run
    simulates nothing, and a single-shot run reuses replicate 0."""
    cold = SweepExecutor(jobs=1, cache=tmp_path / "cache")
    point_cold = cold.run([QUICK_TASK], reps=3)[0]
    assert cold.stats.misses == 3

    warm = SweepExecutor(jobs=1, cache=tmp_path / "cache")
    point_warm = warm.run([QUICK_TASK], reps=3)[0]
    assert warm.stats.misses == 0
    assert warm.stats.hits == 3
    assert point_warm.to_dict() == point_cold.to_dict()

    single = SweepExecutor(jobs=1, cache=tmp_path / "cache")
    point_single = single.run([QUICK_TASK])[0]
    assert single.stats.misses == 0
    assert single.stats.hits == 1
    assert point_single == dataclasses.replace(point_cold, replication=None)


# ------------------------------------------------------------- stochastic
def test_stochastic_replicates_get_genuine_ci():
    task = PointTask("polling", _stochastic_system(), QUICK_CFG)
    ex = SweepExecutor(jobs=1)
    point = ex.run([task], reps=4)[0]
    summary = point.replication
    avail = summary["metrics"]["availability"]
    assert avail["std"] > 0.0
    assert avail["ci_high"] > avail["ci_low"]
    # Stochastic systems skip the disagreement check: divergence is noise.
    assert ex.disagreements == []
    assert summary["disagreements"] == 0


def test_stochastic_replication_reproducible():
    task = PointTask("polling", _stochastic_system(), QUICK_CFG)
    a = SweepExecutor(jobs=1).run([task], reps=4)[0]
    b = SweepExecutor(jobs=1).run([task], reps=4)[0]
    assert a.to_dict() == b.to_dict()


# ---------------------------------------------------------------- registry
def test_ci_variants_registered():
    from repro.analysis import FIGURE_SPECS
    from repro.analysis.figures import ALL_FIGURES

    for fig_id, base in (("fig04_ci", "fig04"), ("fig11_ci", "fig11")):
        spec = FIGURE_SPECS[fig_id]
        assert spec.reps == 5
        assert spec.ci_width == 0.02
        assert spec.claims_id == base
        # Registry-only: the paper-figure table itself is unchanged.
        assert fig_id not in ALL_FIGURES


def test_ci_variant_renders_bands_and_inherits_claims(tmp_path):
    from repro.analysis import run_figure
    from repro.analysis.export import write_csv
    from repro.analysis.svg_plot import render_svg

    report = run_figure("fig04_ci", per_decade=1, sizes=(50 * KB,), reps=2)
    assert report.figure.fig_id == "fig04_ci"
    assert report.claims, "CI variant inherits the base figure's claims"
    (curve,) = report.figure.curves
    assert curve.y_lo is not None and curve.y_hi is not None
    assert len(curve.y_lo) == len(curve.x) == len(curve.y_hi)
    # Deterministic config: the band collapses onto the curve.
    assert curve.y_lo == curve.y == curve.y_hi
    doc = report.figure.to_dict()
    assert sorted(doc["curves"][0]) == ["label", "x", "y", "y_hi", "y_lo"]
    assert "<polygon" in render_svg(report.figure)
    # CSV grows band columns only for banded figures.
    csv_path = write_csv(report.figure, tmp_path / "fig04_ci.csv")
    assert "y_lo,y_hi" in csv_path.read_text().splitlines()[0]


def test_unbanded_exports_unchanged(tmp_path):
    from repro.analysis import run_figure
    from repro.analysis.export import write_csv

    report = run_figure("fig04", per_decade=1, sizes=(50 * KB,))
    (curve,) = report.figure.curves
    assert curve.y_lo is None and curve.y_hi is None
    doc = report.figure.to_dict()
    assert sorted(doc["curves"][0]) == ["label", "x", "y"]
    csv_path = write_csv(report.figure, tmp_path / "fig04.csv")
    assert "y_lo" not in csv_path.read_text()


# ----------------------------------------------------------------- scenario
def _quick_scenario(replication=None):
    spec = {
        "name": "replication-smoke",
        "systems": [{"preset": "GM"}],
        "experiments": [{
            "kind": "polling", "msg_kb": 50, "intervals": [1000],
            "config": {"measure_s": 0.005, "warmup_s": 0.002,
                       "min_cycles": 2},
        }],
    }
    if replication is not None:
        spec["replication"] = replication
    return spec


def test_scenario_replication_attaches_summaries():
    results = run_scenario(_quick_scenario({"reps": 3}))
    assert results["replication"] == {"reps": 3, "ci_width": None}
    point = results["systems"][0]["experiments"][0]["points"][0]
    assert point["replication"]["reps"] == 3
    assert point["replication"]["disagreements"] == 0
    assert "disagreements" not in results


def test_scenario_without_replication_is_single_shot():
    results = run_scenario(_quick_scenario())
    assert "replication" not in results
    point = results["systems"][0]["experiments"][0]["points"][0]
    assert "replication" not in point
    replicated = run_scenario(_quick_scenario({"reps": 3}))
    rep_point = replicated["systems"][0]["experiments"][0]["points"][0]
    base = {k: v for k, v in rep_point.items() if k != "replication"}
    assert base == point


# ---------------------------------------------------------------- CLI seam
def test_cli_figures_reps_writes_bands(tmp_path, capsys):
    from repro.cli import main

    rc = main(["figures", "--ids", "fig13", "--out", str(tmp_path),
               "--no-plots", "--no-cache", "--reps", "2"])
    capsys.readouterr()
    assert rc == 0
    doc = json.loads((tmp_path / "fig13.json").read_text())
    for curve in doc["curves"]:
        assert "y_lo" in curve and "y_hi" in curve


def test_cli_rejects_bad_reps(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["figures", "--ids", "fig13", "--reps", "0"])
    capsys.readouterr()
