"""Property tests for ``repro.stats`` (Hypothesis).

Four load-bearing invariants of the replication machinery:

1. the bootstrap CI always brackets the sample median;
2. the CI is invariant under replicate permutation and bit-identical
   for a fixed seed (arrival order — which the adaptive stopping rule
   perturbs — cannot move an interval);
3. the stopping rule is monotone in the tolerance: widening
   ``ci_width`` never stops a sequence *later*;
4. the replica-disagreement detector never fires on deterministic
   (bit-identical) replicate sets.
"""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    StoppingRule,
    bootstrap_ci,
    find_disagreements,
    sample_median,
)

#: Finite, well-scaled floats — simulator metrics live well inside this.
metric_values = st.floats(min_value=-1e9, max_value=1e9,
                          allow_nan=False, allow_infinity=False)

samples = st.lists(metric_values, min_size=1, max_size=24)


@given(values=samples)
@settings(max_examples=60, deadline=None)
def test_bootstrap_ci_contains_sample_median(values):
    lo, hi = bootstrap_ci(values, resamples=200)
    assert lo <= sample_median(values) <= hi


@given(values=samples, seed=st.integers(min_value=0, max_value=2**32 - 1),
       data=st.data())
@settings(max_examples=60, deadline=None)
def test_bootstrap_ci_permutation_invariant_and_seed_stable(
        values, seed, data):
    shuffled = data.draw(st.permutations(values))
    original = bootstrap_ci(values, resamples=200, seed=seed)
    # Same seed, permuted samples: bit-identical interval.
    assert bootstrap_ci(shuffled, resamples=200, seed=seed) == original
    # Same seed, same samples, second invocation: bit-identical too.
    assert bootstrap_ci(values, resamples=200, seed=seed) == original


@given(
    values=st.lists(metric_values, min_size=2, max_size=16),
    max_reps=st.integers(min_value=2, max_value=16),
    narrow=st.floats(min_value=0.0, max_value=1e6,
                     allow_nan=False, allow_infinity=False),
    extra=st.floats(min_value=0.0, max_value=1e6,
                    allow_nan=False, allow_infinity=False),
)
@settings(max_examples=60, deadline=None)
def test_stopping_rule_monotone_in_tolerance(values, max_reps, narrow,
                                             extra):
    """Whenever the narrow rule stops a prefix, the wide rule has stopped
    at that prefix length or an earlier one — never later."""
    kwargs = dict(max_reps=max_reps, min_reps=2, resamples=200)
    rule_narrow = StoppingRule(ci_width=narrow, **kwargs)
    rule_wide = StoppingRule(ci_width=narrow + extra, **kwargs)

    def stop_index(rule):
        for n in range(1, len(values) + 1):
            if rule.decide(values[:n]) is not None:
                return n
        return None

    narrow_stop = stop_index(rule_narrow)
    wide_stop = stop_index(rule_wide)
    if narrow_stop is not None:
        assert wide_stop is not None
        assert wide_stop <= narrow_stop


scalar_field = st.one_of(
    metric_values,
    st.integers(min_value=-10**9, max_value=10**9),
    st.booleans(),
    st.text(max_size=8),
    st.lists(st.integers(min_value=0, max_value=99), max_size=4),
)

point_docs = st.dictionaries(
    st.text(st.characters(categories=("Ll",)), min_size=1, max_size=10),
    scalar_field,
    max_size=8,
)


@given(doc=point_docs, reps=st.integers(min_value=1, max_value=8))
@settings(max_examples=60, deadline=None)
def test_no_disagreement_on_deterministic_replicates(doc, reps):
    replicates = [copy.deepcopy(doc) for _ in range(reps)]
    assert find_disagreements(replicates) == []
