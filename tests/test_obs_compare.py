"""Regression sentinel (`repro.obs.compare`)."""

import json

import pytest

from repro.obs import (
    compare_history,
    compare_paths,
    compare_samples,
)
from repro.obs.compare import (
    bootstrap_median_diff,
    load_samples,
    scalar_profile,
)


def _bench_doc(total_s, fig04_s, extra_metrics=None):
    doc = {
        "timestamp": "2026-08-06T00:00:00+00:00",
        "total_s": total_s,
        "figures": {"fig04": fig04_s},
        "claims_ok": True,
    }
    if extra_metrics:
        doc["metrics"] = extra_metrics
    return doc


def _write(path, doc):
    path.write_text(json.dumps(doc))
    return path


# ------------------------------------------------------------ scalar_profile
def test_scalar_profile_bench_shape():
    prof = scalar_profile(_bench_doc(9.5, 1.25))
    assert prof == {"total_s": 9.5, "figures.fig04": 1.25}


def test_scalar_profile_metrics_shape():
    prof = scalar_profile({
        "metrics": {
            "counters": {"executor.simulate_wall_s": 4.0,
                         "executor.points_simulated": 32},
            "histograms": {
                "executor.task_wall_s": {"count": 8, "sum": 2.0},
                "not_time_like": {"count": 4, "sum": 1.0},
            },
        },
    })
    assert prof == {
        "executor.simulate_wall_s": 4.0,
        "executor.task_wall_s.mean": 0.25,
    }
    # Work-volume counters are configuration echoes, never compared.
    assert "executor.points_simulated" not in prof


def test_scalar_profile_garbage_tolerant():
    assert scalar_profile({}) == {}
    assert scalar_profile({"total_s": "fast", "figures": 3}) == {}


# -------------------------------------------------------------- load_samples
def test_load_samples_directory(tmp_path):
    _write(tmp_path / "BENCH_1.json", _bench_doc(10.0, 1.0))
    _write(tmp_path / "BENCH_2.json", _bench_doc(11.0, 1.1))
    (tmp_path / "BENCH_3.json").write_text("{corrupt")
    (tmp_path / "notes.txt").write_text("ignored")
    samples = load_samples(tmp_path)
    assert sorted(samples["total_s"]) == [10.0, 11.0]


def test_load_samples_single_file(tmp_path):
    path = _write(tmp_path / "metrics.json", _bench_doc(5.0, 0.5))
    assert load_samples(path)["total_s"] == [5.0]


# ----------------------------------------------------------------- bootstrap
def test_bootstrap_identical_samples_zero_interval():
    lo, hi = bootstrap_median_diff([1.0, 1.0, 1.0], [1.0, 1.0, 1.0])
    assert (lo, hi) == (0.0, 0.0)


def test_bootstrap_deterministic():
    a, b = [1.0, 1.2, 0.9, 1.1], [1.5, 1.6, 1.4, 1.7]
    assert bootstrap_median_diff(a, b) == bootstrap_median_diff(a, b)


def test_bootstrap_detects_clear_shift():
    lo, hi = bootstrap_median_diff([1.0, 1.1, 0.9, 1.05],
                                   [2.0, 2.1, 1.9, 2.05])
    assert lo > 0.5
    assert hi < 1.5


# ----------------------------------------------------------- compare_samples
def test_identical_runs_zero_regressions():
    """Acceptance: comparing a run against itself reports nothing."""
    samples = {"total_s": [3.0, 3.1], "figures.fig04": [1.0, 1.0]}
    report = compare_samples(samples, samples)
    assert report.exit_code == 0
    assert report.regressions == []
    assert len(report.comparisons) == 2


def test_clear_regression_flagged():
    report = compare_samples(
        {"total_s": [1.0, 1.02, 0.98]},
        {"total_s": [2.0, 2.02, 1.98]},
    )
    assert report.exit_code == 1
    (comp,) = report.regressions
    assert comp.name == "total_s"
    assert comp.rel_delta > 0.9


def test_improvement_not_flagged():
    report = compare_samples(
        {"total_s": [2.0, 2.02, 1.98]},
        {"total_s": [1.0, 1.02, 0.98]},
    )
    assert report.exit_code == 0


def test_tiny_significant_drift_below_min_rel_ok():
    """Statistically significant but under the practical threshold."""
    report = compare_samples(
        {"total_s": [1.0, 1.0, 1.0]},
        {"total_s": [1.01, 1.01, 1.01]},
        min_rel=0.05,
    )
    assert report.exit_code == 0
    (comp,) = report.comparisons
    assert comp.ci_low > 0  # significant ...
    assert not comp.regression  # ... but too small to care


def test_insufficient_history_skipped():
    report = compare_samples({"total_s": [1.0]}, {"total_s": [9.0]})
    assert report.comparisons == []
    assert report.skipped == ["total_s"]
    assert report.exit_code == 0


def test_disjoint_metrics_skipped():
    report = compare_samples({"a": [1.0, 1.0]}, {"b": [1.0, 1.0]})
    assert report.comparisons == []
    assert sorted(report.skipped) == ["a", "b"]


def test_report_format_empty():
    report = compare_samples({}, {})
    assert "nothing judged" in report.format()
    assert report.exit_code == 0


def test_report_format_mentions_verdict():
    report = compare_samples(
        {"total_s": [1.0, 1.0, 1.0]}, {"total_s": [3.0, 3.0, 3.0]}
    )
    text = report.format()
    assert "REGRESSION" in text
    assert "total_s" in text


# ------------------------------------------------------------- path-level API
def test_compare_paths_identical_files(tmp_path):
    a = _write(tmp_path / "a.json", _bench_doc(3.0, 1.0))
    b = _write(tmp_path / "b.json", _bench_doc(3.0, 1.0))
    report = compare_paths(a, b, min_records=1)
    assert report.exit_code == 0
    assert len(report.comparisons) == 2


def test_compare_history_short_returns_none(tmp_path):
    _write(tmp_path / "BENCH_1.json", _bench_doc(1.0, 1.0))
    _write(tmp_path / "BENCH_2.json", _bench_doc(1.0, 1.0))
    assert compare_history(tmp_path) is None


def test_compare_history_judges_newest(tmp_path):
    for n, total in ((1, 1.0), (2, 1.02), (3, 0.98)):
        _write(tmp_path / f"BENCH_{n}.json", _bench_doc(total, total))
    _write(tmp_path / "BENCH_4.json", _bench_doc(5.0, 5.0))
    report = compare_history(tmp_path)
    assert report is not None
    assert report.exit_code == 1
    assert {c.name for c in report.regressions} == {"total_s",
                                                    "figures.fig04"}


def test_compare_history_numeric_order(tmp_path):
    """BENCH_10 is newer than BENCH_9 (numeric, not lexicographic)."""
    for n in range(1, 10):
        _write(tmp_path / f"BENCH_{n}.json", _bench_doc(1.0, 1.0))
    _write(tmp_path / "BENCH_10.json", _bench_doc(9.0, 9.0))
    report = compare_history(tmp_path)
    assert report is not None
    assert report.exit_code == 1


# ---------------------------------------------------------------- CLI seam
def test_cli_compare_identical(tmp_path, capsys):
    from repro.cli import main

    a = _write(tmp_path / "a.json", _bench_doc(3.0, 1.0))
    b = _write(tmp_path / "b.json", _bench_doc(3.0, 1.0))
    assert main(["compare", str(a), str(b)]) == 0
    out = capsys.readouterr().out
    assert "0 regressions" in out


def test_cli_compare_regression_exit_code(tmp_path):
    a = _write(tmp_path / "a.json", _bench_doc(1.0, 1.0))
    b = _write(tmp_path / "b.json", _bench_doc(9.0, 9.0))
    from repro.cli import main

    assert main(["compare", str(a), str(b)]) == 1


def test_cli_compare_short_history_skips(tmp_path, capsys):
    from repro.cli import main

    _write(tmp_path / "BENCH_1.json", _bench_doc(1.0, 1.0))
    assert main(["compare", str(tmp_path)]) == 0
    assert "nothing to judge" in capsys.readouterr().out


def test_single_record_history_never_judged(tmp_path, capsys):
    """A one-record history is "insufficient", even with --min-records 0.

    Regression test: judging the sole record against an empty baseline
    would have produced degenerate zero-width CIs; the clamp in
    ``compare_history`` must report insufficient history instead, and
    the CLI must exit 0.
    """
    from repro.cli import main

    _write(tmp_path / "BENCH_1.json", _bench_doc(1.0, 1.0))
    assert compare_history(tmp_path, min_records=0) is None
    assert main(["compare", str(tmp_path), "--min-records", "0"]) == 0
    out = capsys.readouterr().out
    assert "insufficient history" in out
    assert "nothing to judge" in out


def test_cli_compare_missing_path(tmp_path):
    from repro.cli import main

    assert main(["compare", str(tmp_path / "nope")]) == 2


def test_cli_compare_too_many_runs(tmp_path):
    from repro.cli import main

    paths = []
    for name in ("a", "b", "c"):
        paths.append(str(_write(tmp_path / f"{name}.json",
                                _bench_doc(1.0, 1.0))))
    assert main(["compare", *paths]) == 2
