"""Tests: sweeps, suite driver, result records."""

import dataclasses

import pytest

from repro.core import (
    CombSuite,
    PollingConfig,
    PwwConfig,
    Series,
    log_intervals,
    polling_sweep,
    pww_sweep,
)
from repro.core.results import PollingPoint, PwwPoint

KB = 1024


class TestLogIntervals:
    def test_endpoints_included(self):
        grid = log_intervals(10, 1e6, per_decade=1)
        assert grid[0] == 10 and grid[-1] == 1_000_000

    def test_monotonic_unique(self):
        grid = log_intervals(10, 1e8, per_decade=3)
        assert grid == sorted(set(grid))

    def test_validation(self):
        with pytest.raises(ValueError):
            log_intervals(0, 100)
        with pytest.raises(ValueError):
            log_intervals(100, 10)

    def test_per_decade_below_one_rejected(self):
        with pytest.raises(ValueError, match="per_decade"):
            log_intervals(10, 1e6, per_decade=0)
        with pytest.raises(ValueError, match="per_decade"):
            log_intervals(10, 1e6, per_decade=-3)

    def test_dense_grid_keeps_endpoints_after_dedup(self):
        # 50 points/decade over one decade collides heavily at the low end;
        # the dedup must still keep both endpoints and strict monotonicity.
        grid = log_intervals(10, 100, per_decade=50)
        assert grid[0] == 10 and grid[-1] == 100
        assert all(a < b for a, b in zip(grid, grid[1:]))

    def test_degenerate_single_decade(self):
        grid = log_intervals(100, 100, per_decade=2)
        assert grid == [100]


class TestSweeps:
    def test_polling_sweep_series(self, gm):
        base = PollingConfig(measure_s=0.01, warmup_s=0.002, min_cycles=3)
        series = polling_sweep(gm, 100 * KB, [1_000, 100_000], base=base)
        assert len(series) == 2
        assert series.label == "GM 100 KB"
        assert series.xs("poll_interval_iters") == [1_000, 100_000]
        assert all(isinstance(p, PollingPoint) for p in series)

    def test_pww_sweep_series(self, portals):
        base = PwwConfig(batches=4, warmup_batches=1)
        series = pww_sweep(portals, 100 * KB, [10_000, 1_000_000], base=base)
        assert len(series) == 2
        assert all(isinstance(p, PwwPoint) for p in series)

    def test_custom_label(self, gm):
        base = PollingConfig(measure_s=0.01, warmup_s=0.002, min_cycles=3)
        series = polling_sweep(gm, 10 * KB, [1000], base=base, label="mine")
        assert series.label == "mine"


class TestSuite:
    def test_polling_and_pww_entry_points(self, gm):
        suite = CombSuite(gm)
        pt = suite.polling(msg_bytes=100 * KB, poll_interval_iters=1_000,
                           measure_s=0.01, warmup_s=0.002, min_cycles=3)
        assert pt.bandwidth_MBps > 0
        pw = suite.pww(msg_bytes=100 * KB, work_interval_iters=100_000,
                       batches=4, warmup_batches=1)
        assert pw.wait_s > 0

    def test_offload_verdicts(self, gm, portals):
        assert not CombSuite(gm).offload_verdict().offloaded
        assert CombSuite(portals).offload_verdict().offloaded

    def test_offload_summary_strings(self, gm, portals):
        assert "does NOT provide" in CombSuite(gm).offload_report()
        assert "provides" in CombSuite(portals).offload_report()

    def test_curves(self, gm):
        base = PollingConfig(measure_s=0.01, warmup_s=0.002, min_cycles=3)
        curve = CombSuite(gm).polling_curve(
            100 * KB, lo=1e3, hi=1e5, per_decade=1, base=base
        )
        assert len(curve) == 3


class TestResults:
    def test_polling_point_to_dict(self, gm):
        pt = PollingPoint(
            system="GM", msg_bytes=1024, poll_interval_iters=10,
            availability=0.5, bandwidth_Bps=5e7, elapsed_s=0.1,
            iters=1e6, polls=100, msgs=10,
        )
        d = pt.to_dict()
        assert d["bandwidth_MBps"] == pytest.approx(50.0)
        assert d["availability"] == 0.5

    def test_pww_point_derived_fields(self):
        pt = PwwPoint(
            system="P", msg_bytes=1024, work_interval_iters=10,
            availability=0.5, bandwidth_Bps=1e6, elapsed_s=1.0, batches=5,
            post_s=10e-6, work_s=150e-6, wait_s=40e-6, work_dry_s=100e-6,
            batch_msgs=2,
        )
        assert pt.post_per_msg_s == pytest.approx(2.5e-6)
        assert pt.overhead_s == pytest.approx(50e-6)

    def test_series_accessors(self):
        s = Series("x", [1, 2, 3])
        assert len(s) == 3
        assert list(s) == [1, 2, 3]
