"""Unit tests for the observability layer (``repro.obs``).

Covers the primitives (ring buffer, structured tracer, metrics
registry), the exporters (Chrome ``trace_event`` JSON, CSV timeline,
metrics sidecar), the ambient-attachment context, the metric derivations
in :class:`~repro.obs.observer.Observer`, and coexistence with the
sanitizer on the shared tracer seam.  The sim-level differential and
property checks live in ``tests/test_golden.py`` and
``tests/test_obs_properties.py``.
"""

import json

import pytest

from repro.config import gm_system, portals_system
from repro.core import PollingConfig, PwwConfig, run_polling, run_pww
from repro.obs import (
    TRACE_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObsEvent,
    ObsTracer,
    Observer,
    RingBuffer,
    chrome_trace,
    current_observer,
    use_observer,
    write_chrome_trace,
    write_csv_timeline,
    write_metrics,
)
from repro.sim.trace import MultiTracer, Tracer
from repro.verify import Sanitizer, use_sanitizer

KB = 1024


# ---------------------------------------------------------------- RingBuffer
class TestRingBuffer:
    def test_under_capacity_keeps_order(self):
        ring = RingBuffer(capacity=4)
        for i in range(3):
            ring.append(i)
        assert ring.to_list() == [0, 1, 2]
        assert len(ring) == 3
        assert ring.dropped == 0

    def test_wraparound_keeps_newest_and_counts_dropped(self):
        ring = RingBuffer(capacity=3)
        for i in range(7):
            ring.append(i)
        assert ring.to_list() == [4, 5, 6]
        assert ring.dropped == 4

    def test_wraparound_is_seamless_across_many_laps(self):
        ring = RingBuffer(capacity=5)
        for i in range(23):
            ring.append(i)
            expected = list(range(max(0, i - 4), i + 1))
            assert ring.to_list() == expected

    def test_clear_retains_dropped_count(self):
        ring = RingBuffer(capacity=2)
        for i in range(5):
            ring.append(i)
        ring.clear()
        assert ring.to_list() == []
        assert len(ring) == 0
        assert ring.dropped == 3
        ring.append("x")
        assert ring.to_list() == ["x"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RingBuffer(capacity=0)

    def test_capacity_one(self):
        ring = RingBuffer(capacity=1)
        ring.append("a")
        ring.append("b")
        assert ring.to_list() == ["b"]
        assert ring.dropped == 1


# ----------------------------------------------------------------- ObsTracer
class TestObsTracer:
    def test_records_events_with_global_sequence(self):
        tr = ObsTracer()
        tr.record(1.0, "a", "x", None)
        tr.record(2.0, "b", "y", (1,))
        tr.record(3.0, "a", "x", None)
        events = tr.events()
        assert [ev.seq for ev in events] == [0, 1, 2]
        assert [ev.kind for ev in events] == ["x", "y", "x"]
        assert events[1].detail == (1,)

    def test_events_merge_across_rings_in_emission_order(self):
        # Interleave two kinds; events() must recover emission order by
        # seq even though storage is per-kind.
        tr = ObsTracer()
        for i in range(6):
            tr.record(float(i), "s", "even" if i % 2 == 0 else "odd", i)
        assert [ev.detail for ev in tr.events()] == [0, 1, 2, 3, 4, 5]

    def test_kind_filter(self):
        tr = ObsTracer(kinds={"keep"})
        tr.record(0.0, "s", "keep", None)
        tr.record(0.0, "s", "drop", None)
        assert set(tr.counts()) == {"keep"}
        assert len(tr.events()) == 1

    def test_kernel_stream_off_by_default(self):
        tr = ObsTracer()
        tr.record_kernel(0.5, object())
        assert tr.events() == []

    def test_kernel_stream_opt_in(self):
        tr = ObsTracer(kernel=True)
        tr.record_kernel(0.5, "EV")
        events = tr.events()
        assert len(events) == 1
        assert events[0].kind == "kernel"
        assert events[0].source == "engine"

    def test_counts_include_dropped(self):
        tr = ObsTracer(ring_capacity=2)
        for i in range(5):
            tr.record(float(i), "s", "k", i)
        assert tr.counts() == {"k": 5}
        assert tr.dropped() == {"k": 3}
        assert [ev.detail for ev in tr.of_kind("k")] == [3, 4]

    def test_dropped_omits_zero_entries(self):
        tr = ObsTracer()
        tr.record(0.0, "s", "k", None)
        assert tr.dropped() == {}

    def test_of_kind_unknown_is_empty(self):
        assert ObsTracer().of_kind("nope") == []

    def test_clear_continues_sequence(self):
        tr = ObsTracer()
        tr.record(0.0, "s", "k", None)
        tr.clear()
        tr.record(1.0, "s", "k", None)
        assert tr.events()[0].seq == 1

    def test_dispatch_hook_sees_stored_events_only(self):
        seen = []
        tr = ObsTracer(kinds={"keep"})
        tr.dispatch = seen.append
        tr.record(0.0, "s", "keep", 1)
        tr.record(0.0, "s", "drop", 2)
        assert [ev.detail for ev in seen] == [1]


# ------------------------------------------------------------------- metrics
class TestCounter:
    def test_accumulates(self):
        c = Counter("c")
        c.inc()
        c.inc(2)
        c.inc(0.5)
        assert c.value == 3.5
        assert c.to_dict() == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Counter("c").inc(-1)


class TestGauge:
    def test_watermarks(self):
        g = Gauge("g")
        assert g.to_dict() == {"value": None, "min": None, "max": None}
        for v in (3, -1, 7, 2):
            g.set(v)
        assert g.to_dict() == {"value": 2, "min": -1, "max": 7}

    def test_add_starts_from_zero(self):
        g = Gauge("g")
        g.add(2)
        g.add(-5)
        g.add(1)
        assert g.value == -2
        assert g.min == -3
        assert g.max == 2


class TestHistogram:
    def test_bucket_semantics_value_on_bound_counts_into_bucket(self):
        h = Histogram("h", bounds=[1.0, 10.0])
        h.observe(1.0)     # == bound 0 -> bucket 0
        h.observe(1.5)     # bucket 1
        h.observe(10.0)    # == bound 1 -> bucket 1
        h.observe(99.0)    # overflow
        assert h.counts == [1, 2, 1]
        assert h.count == 4
        assert h.total == pytest.approx(111.5)
        assert h.mean == pytest.approx(111.5 / 4)

    def test_empty_mean_is_zero(self):
        assert Histogram("h", bounds=[1.0]).mean == 0.0

    def test_bounds_required(self):
        with pytest.raises(ValueError, match="no buckets"):
            Histogram("h", bounds=[])

    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", bounds=[1.0, 1.0, 2.0])
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", bounds=[2.0, 1.0])

    def test_to_dict(self):
        h = Histogram("h", bounds=[1.0])
        h.observe(0.5)
        assert h.to_dict() == {
            "bounds": [1.0], "counts": [1, 0],
            "count": 1, "total": 0.5, "mean": 0.5,
        }


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c", [1.0]) is reg.histogram("c")

    def test_type_mismatch_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.histogram("a")

    def test_container_protocol(self):
        reg = MetricsRegistry()
        assert "a" not in reg
        assert len(reg) == 0
        reg.counter("a")
        assert "a" in reg
        assert len(reg) == 1

    def test_snapshot_grouped_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z.count").inc(2)
        reg.counter("a.count")
        reg.gauge("m.gauge").set(1)
        reg.histogram("h.hist", [1.0]).observe(0.5)
        snap = reg.to_dict()
        assert list(snap) == ["counters", "gauges", "histograms"]
        assert list(snap["counters"]) == ["a.count", "z.count"]
        assert snap["counters"]["z.count"] == 2
        assert snap["gauges"]["m.gauge"]["value"] == 1
        assert snap["histograms"]["h.hist"]["count"] == 1
        assert reg.names() == ["a.count", "h.hist", "m.gauge", "z.count"]

    def test_snapshot_is_json_serializable_and_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("b").inc(1)
            reg.counter("a").inc(2)
            reg.gauge("g").set(3)
            reg.histogram("h", [1.0, 2.0]).observe(1.5)
            return json.dumps(reg.to_dict(), sort_keys=True)

        assert build() == build()


# --------------------------------------------------------------- MultiTracer
class TestMultiTracer:
    def test_fans_out_record_and_kernel(self):
        a, b = ObsTracer(kernel=True), ObsTracer(kernel=True)
        multi = MultiTracer([a, b])
        multi.record(1.0, "s", "k", "d")
        multi.record_kernel(2.0, "EV")
        for child in (a, b):
            kinds = [ev.kind for ev in child.events()]
            assert kinds == ["k", "kernel"]

    def test_is_a_tracer(self):
        assert isinstance(MultiTracer([]), Tracer)


# ------------------------------------------------------------------- context
class TestContext:
    def test_default_is_none(self):
        assert current_observer() is None

    def test_use_and_nest(self):
        outer, inner = Observer(), Observer()
        with use_observer(outer):
            assert current_observer() is outer
            with use_observer(inner):
                assert current_observer() is inner
            assert current_observer() is outer
        assert current_observer() is None

    def test_none_is_a_no_op(self):
        with use_observer(None) as obs:
            assert obs is None
            assert current_observer() is None

    def test_pops_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_observer(Observer()):
                raise RuntimeError("boom")
        assert current_observer() is None


# ------------------------------------------------------ Observer derivations
def _feed(observer, time_s, source, kind, detail=None):
    observer.tracer.record(time_s, source, kind, detail)


class TestObserverDerivations:
    def test_pww_phase_counters_and_histograms(self):
        obs = Observer()
        _feed(obs, 1.0, "rank0.pww", "pww_phase", (0, 0.4, 0.1, 0.2, 0.3))
        _feed(obs, 2.0, "rank0.pww", "pww_phase", (1, 1.0, 0.2, 0.3, 0.5))
        m = obs.metrics
        assert m.counter("sim.pww.batches").value == 2
        assert m.counter("sim.pww.post_total_s").value == pytest.approx(0.3)
        assert m.counter("sim.pww.work_total_s").value == pytest.approx(0.5)
        assert m.counter("sim.pww.wait_total_s").value == pytest.approx(0.8)
        assert m.histogram("sim.pww.wait_s").count == 2

    def test_poll_hit_miss_accounting(self):
        obs = Observer()
        _feed(obs, 0.0, "rank0.polling", "poll", (0,))
        _feed(obs, 1.0, "rank0.polling", "poll", (3,))
        _feed(obs, 2.0, "rank0.polling", "poll_empty", (40,))
        m = obs.metrics
        assert m.counter("sim.poll.hits").value == 1
        assert m.counter("sim.poll.completions").value == 3
        assert m.counter("sim.poll.misses").value == 41

    def test_request_latency_pairing(self):
        obs = Observer()
        _feed(obs, 1.0, "rank0.mpi.req", "req_post", (7, "recv", 1, 11, 64))
        _feed(obs, 1.0, "rank0.mpi.req", "req_post", (8, "send", 1, 11, 64))
        _feed(obs, 3.5, "rank0.mpi.req", "req_complete", (7, "recv"))
        m = obs.metrics
        assert m.counter("sim.mpi.req_posted").value == 2
        assert m.counter("sim.mpi.req_completed").value == 1
        hist = m.histogram("sim.mpi.req_latency_s")
        assert hist.count == 1
        assert hist.total == pytest.approx(2.5)
        # The unmatched post stays pending, not observed.
        assert 8 in obs._req_posted_at_s

    def test_unmatched_complete_is_ignored(self):
        obs = Observer()
        _feed(obs, 1.0, "rank0.mpi.req", "req_complete", (99, "recv"))
        assert obs.metrics.counter("sim.mpi.req_completed").value == 1
        assert "sim.mpi.req_latency_s" not in obs.metrics

    def test_rendezvous_stall_pairing(self):
        obs = Observer()
        _feed(obs, 2.0, "rank1.portals", "rts_rx", (5,))
        _feed(obs, 2.25, "rank1.portals", "get_issued", (5,))
        m = obs.metrics
        assert m.counter("sim.rndv.rts").value == 1
        assert m.counter("sim.rndv.gets").value == 1
        assert m.histogram("sim.rndv.stall_s").total == pytest.approx(0.25)

    def test_gm_token_gauge(self):
        obs = Observer()
        _feed(obs, 0.0, "node0.gm", "gm_tokens", (0, 5, 8))
        _feed(obs, 1.0, "node0.gm", "gm_tokens", (0, 2, 8))
        g = obs.metrics.gauge("sim.gm.tokens.node0")
        assert g.value == 2
        assert g.min == 2
        assert g.max == 5

    def test_net_counters(self):
        obs = Observer()
        for kind in ("wire_tx", "wire_rx", "wire_drop", "packet_tx", "nic_rx"):
            _feed(obs, 0.0, "link", kind, None)
        for kind in ("wire_tx", "wire_rx", "wire_drop", "packet_tx", "nic_rx"):
            assert obs.metrics.counter(f"sim.net.{kind}").value == 1

    def test_queue_depth_gauge_tracks_watermarks(self):
        obs = Observer()
        src = "rank0.posted"
        for kind in ("q_post", "q_post", "q_post", "q_match", "q_remove"):
            _feed(obs, 0.0, src, kind, None)
        g = obs.metrics.gauge(f"sim.queue.{src}.depth")
        assert g.value == 1
        assert g.max == 3

    def test_unknown_kind_is_ignored(self):
        obs = Observer()
        _feed(obs, 0.0, "s", "no_such_kind", ("x",))
        assert len(obs.metrics) == 0
        assert obs.tracer.counts() == {"no_such_kind": 1}

    def test_summary_mentions_events_and_metrics(self):
        obs = Observer()
        _feed(obs, 0.0, "rank0.polling", "poll", (1,))
        text = obs.summary()
        assert "1 events" in text
        assert "metrics" in text

    def test_to_dict_shape(self):
        obs = Observer(ring_capacity=1)
        _feed(obs, 0.0, "s", "poll", (0,))
        _feed(obs, 1.0, "s", "poll", (0,))
        doc = obs.to_dict()
        assert doc["trace"]["event_counts"] == {"poll": 2}
        assert doc["trace"]["dropped"] == {"poll": 1}
        assert doc["metrics"]["counters"]["sim.poll.misses"] == 2


# ----------------------------------------------------------------- exporters
def _sample_events():
    return [
        ObsEvent(0, 1e-6, "rank0.pww", "pww_phase", (0, 1e-6, 1e-6, 2e-6, 3e-6)),
        ObsEvent(1, 2e-6, "rank0.posted", "q_post", None),
        ObsEvent(2, 3e-6, "rank0.posted", "q_match", None),
        ObsEvent(3, 4e-6, "node0.gm", "gm_tokens", (0, 3, 8)),
        ObsEvent(4, 5e-6, "rank0.polling", "poll", (2,)),
    ]


class TestChromeTrace:
    def test_structure_and_metadata(self):
        doc = chrome_trace(_sample_events(), label="unit")
        assert doc["otherData"]["schema_version"] == TRACE_SCHEMA_VERSION
        meta = [ev for ev in doc["traceEvents"] if ev["ph"] == "M"]
        names = {ev["args"]["name"] for ev in meta
                 if ev["name"] == "thread_name"}
        assert names == {
            "rank0.pww", "rank0.posted", "node0.gm", "rank0.polling"
        }
        assert any(ev["name"] == "process_name"
                   and "unit" in ev["args"]["name"] for ev in meta)

    def test_pww_phase_expands_to_contiguous_slices(self):
        doc = chrome_trace(_sample_events())
        slices = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        assert [s["name"] for s in slices] == ["pww.post", "pww.work", "pww.wait"]
        # Slices tile the batch: each starts where the previous ended.
        assert slices[0]["ts"] == pytest.approx(1.0)       # t0_s in us
        assert slices[0]["dur"] == pytest.approx(1.0)
        assert slices[1]["ts"] == pytest.approx(
            slices[0]["ts"] + slices[0]["dur"])
        assert slices[2]["ts"] == pytest.approx(
            slices[1]["ts"] + slices[1]["dur"])

    def test_queue_events_become_running_counter(self):
        doc = chrome_trace(_sample_events())
        counters = [ev for ev in doc["traceEvents"]
                    if ev["ph"] == "C" and ev["cat"] == "queue"]
        assert [c["args"]["depth"] for c in counters] == [1, 0]

    def test_gm_tokens_become_counter(self):
        doc = chrome_trace(_sample_events())
        gm = [ev for ev in doc["traceEvents"]
              if ev["ph"] == "C" and ev["cat"] == "gm"]
        assert gm[0]["args"]["tokens"] == 3

    def test_other_kinds_become_instants(self):
        doc = chrome_trace(_sample_events())
        instants = [ev for ev in doc["traceEvents"] if ev["ph"] == "i"]
        assert [ev["name"] for ev in instants] == ["poll"]
        assert instants[0]["args"]["detail"] == [2]

    def test_timestamps_are_microseconds(self):
        (ev,) = [e for e in chrome_trace(_sample_events())["traceEvents"]
                 if e["ph"] == "i"]
        assert ev["ts"] == pytest.approx(5.0)

    def test_document_is_json_serializable(self):
        events = [ObsEvent(0, 0.0, "s", "weird", object())]
        doc = chrome_trace(events)
        json.dumps(doc)  # repr-fallback makes arbitrary details safe

    def test_write_chrome_trace_round_trip(self, tmp_path):
        path = write_chrome_trace(_sample_events(), tmp_path / "t.trace.json")
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) > 0


class TestCsvTimeline:
    def test_round_trip(self, tmp_path):
        path = write_csv_timeline(_sample_events(), tmp_path / "t.csv")
        lines = path.read_text().splitlines()
        assert lines[0] == "seq,time_s,source,kind,detail"
        assert len(lines) == 1 + len(_sample_events())
        # time_s is written with repr so it round-trips exactly.
        first = lines[1].split(",")
        assert float(first[1]) == 1e-6


class TestMetricsSidecar:
    def test_from_registry_with_extra(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        path = write_metrics(reg, tmp_path / "m.json", extra={"jobs": 2})
        doc = json.loads(path.read_text())
        assert doc["schema_version"] == TRACE_SCHEMA_VERSION
        assert doc["metrics"]["counters"]["a"] == 3
        assert doc["jobs"] == 2

    def test_from_plain_dict(self, tmp_path):
        path = write_metrics({"counters": {}}, tmp_path / "m.json")
        assert json.loads(path.read_text())["metrics"] == {"counters": {}}

    def test_output_is_stable(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        p1 = write_metrics(reg, tmp_path / "m1.json")
        p2 = write_metrics(reg, tmp_path / "m2.json")
        assert p1.read_text() == p2.read_text()


# -------------------------------------------------- world-level integration
class TestObserverOnRealRuns:
    def test_polling_run_derives_poll_economics(self):
        obs = Observer()
        with use_observer(obs):
            pt = run_polling(gm_system(), PollingConfig(
                msg_bytes=10 * KB, poll_interval_iters=1_000,
                measure_s=0.002, warmup_s=0.0005,
            ))
        m = obs.metrics
        hits = m.counter("sim.poll.hits").value
        misses = m.counter("sim.poll.misses").value
        assert hits > 0
        assert hits + misses > 0
        assert m.counter("sim.poll.completions").value >= hits
        assert 0.0 <= pt.availability <= 1.0
        # Queue observers were installed: matching activity was seen.
        assert any(name.startswith("sim.queue.") for name in m.names())

    def test_pww_run_derives_phase_breakdown(self):
        obs = Observer()
        with use_observer(obs):
            run_pww(portals_system(), PwwConfig(
                msg_bytes=32 * KB, work_interval_iters=10_000,
                batches=3, warmup_batches=1,
            ))
        m = obs.metrics
        # warmup + measured batches all traced
        assert m.counter("sim.pww.batches").value == 4
        assert m.counter("sim.mpi.req_posted").value > 0
        # 32 KB > the 16 KB threshold: Portals rendezvous path exercised
        assert m.counter("sim.rndv.rts").value > 0

    def test_observer_and_sanitizer_share_the_seam(self):
        obs, san = Observer(), Sanitizer()
        with use_sanitizer(san), use_observer(obs):
            run_polling(gm_system(), PollingConfig(
                msg_bytes=10 * KB, poll_interval_iters=1_000,
                measure_s=0.002, warmup_s=0.0005,
            ))
        # Sanitizer still validates (queue hooks chained, not replaced) …
        assert san.finalize() == []
        # … and the observer captured the run.
        assert obs.metrics.counter("sim.poll.hits").value > 0
        assert any(n.startswith("sim.queue.") for n in obs.metrics.names())

    def test_detached_run_records_nothing(self):
        obs = Observer()
        run_polling(gm_system(), PollingConfig(
            msg_bytes=10 * KB, poll_interval_iters=1_000,
            measure_s=0.002, warmup_s=0.0005,
        ))
        assert obs.tracer.events() == []
        assert len(obs.metrics) == 0

    def test_chrome_export_of_real_run_is_valid(self, tmp_path):
        obs = Observer()
        with use_observer(obs):
            run_pww(gm_system(), PwwConfig(
                msg_bytes=10 * KB, work_interval_iters=10_000,
                batches=3, warmup_batches=1,
            ))
        path = write_chrome_trace(obs.events(), tmp_path / "pww.trace.json")
        doc = json.loads(path.read_text())
        phases = {ev["ph"] for ev in doc["traceEvents"]}
        assert "X" in phases  # pww slices present
        assert "M" in phases
        # Every event references a declared thread.
        tids = {ev["tid"] for ev in doc["traceEvents"] if ev["ph"] == "M"}
        assert {ev["tid"] for ev in doc["traceEvents"]} <= tids
