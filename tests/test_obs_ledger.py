"""Tests: the persistent run ledger and its CLI surfaces.

Covers the append-only JSONL contract (torn lines tolerated and
counted, concurrent-append-safe single-write lines), the ``comb
history`` filters/aggregates (byte-identical on repeat), the ledger as
a ``comb compare`` history source, ``--format json`` verdicts, and the
one-line-error convention for unwritable ledger/stream targets.
"""

import json

import pytest

from repro.cli import main
from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    RunLedger,
    filter_records,
    format_history,
    history_aggregate,
    ledger_path,
    read_records,
    run_record_samples,
)

RUN_META = dict(
    wall_s=2.5, timestamp="2026-08-08T00:00:00+00:00", compiled=False,
    reps=1, cache={"hits": 1, "misses": 2, "hit_rate": 0.33},
)


def _seed_ledger(ledger_dir, run_id="r1", figures=None):
    ledger = RunLedger(ledger_dir, run_id, "figures")
    ledger.record_point("k1", "polling", "GM", "miss", 0.5, 42,
                        figure="fig04")
    ledger.record_point("k2", "polling", "GM", "miss", 0.3, 42,
                        figure="fig04")
    ledger.record_point("k3", "pww", "Portals", "hit", None, 7,
                        figure="fig08")
    ledger.record_run(figures=figures or {"fig04": 1.5, "fig08": 0.9},
                      claims_ok=True, **RUN_META)
    ledger.close()
    return ledger_path(ledger_dir)


# ------------------------------------------------------------------- writing
class TestRunLedger:
    def test_append_and_read_back(self, tmp_path):
        path = _seed_ledger(tmp_path / "ledger")
        records, corrupt = read_records(path)
        assert corrupt == 0
        assert [r["rec"] for r in records] == ["point"] * 3 + ["run"]
        assert all(r["v"] == LEDGER_SCHEMA_VERSION for r in records)
        assert all(r["run_id"] == "r1" for r in records)
        run = records[-1]
        assert run["points"] == 3 and run["cmd"] == "figures"
        assert run["figures"] == {"fig04": 1.5, "fig08": 0.9}
        point = records[0]
        assert (point["key"], point["outcome"], point["seed"]) == \
            ("k1", "miss", 42)

    def test_each_line_is_one_json_object(self, tmp_path):
        path = _seed_ledger(tmp_path / "ledger")
        for line in path.read_text().splitlines():
            assert isinstance(json.loads(line), dict)

    def test_runs_append_not_truncate(self, tmp_path):
        _seed_ledger(tmp_path / "ledger", run_id="r1")
        _seed_ledger(tmp_path / "ledger", run_id="r2")
        records, _corrupt = read_records(ledger_path(tmp_path / "ledger"))
        assert len(records) == 8
        assert {r["run_id"] for r in records} == {"r1", "r2"}

    def test_torn_lines_tolerated_and_counted(self, tmp_path):
        path = _seed_ledger(tmp_path / "ledger")
        with path.open("a") as fh:
            fh.write('{"v": 1, "rec": "run", "run_id": "torn", "wa')
        records, corrupt = read_records(path)
        assert corrupt == 1 and len(records) == 4

    def test_foreign_records_counted_as_corrupt(self, tmp_path):
        path = _seed_ledger(tmp_path / "ledger")
        with path.open("a") as fh:
            fh.write('{"rec": "alien"}\n[1, 2]\n')
        records, corrupt = read_records(path)
        assert corrupt == 2 and len(records) == 4

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_records(tmp_path / "nope.jsonl") == ([], 0)


# ------------------------------------------------------------------ filters
class TestFilters:
    @pytest.fixture()
    def records(self, tmp_path):
        _seed_ledger(tmp_path / "ledger", run_id="r1")
        _seed_ledger(tmp_path / "ledger", run_id="r2")
        recs, _ = read_records(ledger_path(tmp_path / "ledger"))
        return recs

    def test_by_rec(self, records):
        assert len(filter_records(records, rec="run")) == 2
        assert len(filter_records(records, rec="point")) == 6

    def test_by_figure_matches_points_and_runs(self, records):
        out = filter_records(records, figure="fig08")
        # One fig08 point per run, plus both run records (fig08 present).
        assert [r["rec"] for r in out] == ["point", "run"] * 2

    def test_by_system_and_kind_keep_run_records(self, records):
        out = filter_records(records, system="Portals")
        assert all(r["rec"] == "run" or r["system"] == "Portals"
                   for r in out)
        out = filter_records(records, kind="pww")
        assert sum(1 for r in out if r["rec"] == "point") == 2

    def test_last_keeps_newest_runs(self, records):
        out = filter_records(records, last=1)
        assert {r["run_id"] for r in out} == {"r2"}


# --------------------------------------------------------------- aggregates
class TestAggregates:
    def test_aggregate_shape(self, tmp_path):
        _seed_ledger(tmp_path / "ledger", run_id="r1")
        records, _ = read_records(ledger_path(tmp_path / "ledger"))
        agg = history_aggregate(records)
        assert agg["runs"] == 1 and agg["points"] == 3
        assert agg["outcomes"] == {"hit": 1, "miss": 2}
        assert agg["points_by_kind"] == {"polling": 2, "pww": 1}
        assert agg["mean_miss_wall_s"] == pytest.approx(0.4)
        assert agg["run_wall_s"] == [2.5]
        assert agg["figure_wall_trend_s"] == {"fig04": [1.5],
                                              "fig08": [0.9]}

    def test_aggregate_is_deterministic(self, tmp_path):
        _seed_ledger(tmp_path / "ledger", run_id="r1")
        _seed_ledger(tmp_path / "ledger", run_id="r2")
        records, _ = read_records(ledger_path(tmp_path / "ledger"))
        once = json.dumps(history_aggregate(records), sort_keys=True)
        again = json.dumps(history_aggregate(records), sort_keys=True)
        assert once == again

    def test_format_history_mentions_everything(self, tmp_path):
        _seed_ledger(tmp_path / "ledger")
        records, _ = read_records(ledger_path(tmp_path / "ledger"))
        text = format_history(history_aggregate(records), corrupt=2)
        assert "1 runs, 3 point records" in text
        assert "miss=2" in text and "polling=2" in text
        assert "fig04 wall trend" in text
        assert "2 corrupt lines skipped" in text

    def test_run_record_samples_shape(self, tmp_path):
        path = _seed_ledger(tmp_path / "ledger")
        samples = run_record_samples(path)
        assert len(samples) == 1
        # The shape compare.scalar_profile consumes: total_s + figures.
        assert samples[0]["total_s"] == 2.5
        assert samples[0]["figures"]["fig04"] == 1.5


# ------------------------------------------------------------------ CLI: runs
def _figures_argv(tmp_path, *extra):
    return ["figures", "--ids", "fig04", "--per-decade", "1", "--no-cache",
            "--no-plots", "--ledger-dir", str(tmp_path / "ledger"),
            *extra]


class TestCliLedgerWiring:
    def test_figures_appends_point_and_run_records(self, tmp_path, capsys):
        assert main(_figures_argv(tmp_path)) == 0
        capsys.readouterr()
        records, corrupt = read_records(ledger_path(tmp_path / "ledger"))
        assert corrupt == 0
        runs = [r for r in records if r["rec"] == "run"]
        points = [r for r in records if r["rec"] == "point"]
        assert len(runs) == 1
        assert runs[0]["cmd"] == "figures" and runs[0]["claims_ok"] is True
        assert runs[0]["points"] == len(points) > 0
        assert all(p["outcome"] == "miss" for p in points)
        assert "fig04" in runs[0]["figures"]

    def test_no_ledger_opts_out(self, tmp_path, capsys):
        assert main(_figures_argv(tmp_path, "--no-ledger")) == 0
        capsys.readouterr()
        assert not ledger_path(tmp_path / "ledger").exists()

    def test_ledger_runs_are_bit_identical_to_bare(self, tmp_path, capsys):
        assert main(_figures_argv(tmp_path)) == 0
        with_ledger = capsys.readouterr().out
        assert main(["figures", "--ids", "fig04", "--per-decade", "1",
                     "--no-cache", "--no-plots", "--no-ledger"]) == 0
        bare = capsys.readouterr().out
        assert with_ledger == bare

    def test_history_aggregates_are_stable_across_invocations(
            self, tmp_path, capsys):
        assert main(_figures_argv(tmp_path)) == 0
        capsys.readouterr()
        argv = ["history", "--ledger-dir", str(tmp_path / "ledger"),
                "--format", "json"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        doc = json.loads(first)
        assert doc["runs"] == 1 and doc["corrupt_lines"] == 0

    def test_history_filters(self, tmp_path, capsys):
        _seed_ledger(tmp_path / "ledger", run_id="r1")
        assert main(["history", "--ledger-dir", str(tmp_path / "ledger"),
                     "--kind", "pww", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["points_by_kind"] == {"pww": 1}

    def test_history_without_ledger_is_friendly(self, tmp_path, capsys):
        assert main(["history", "--ledger-dir",
                     str(tmp_path / "absent")]) == 0
        assert "no ledger" in capsys.readouterr().out

    def test_scenario_appends_run_record(self, tmp_path, capsys):
        spec = tmp_path / "s.json"
        spec.write_text(json.dumps({
            "name": "t",
            "systems": [{"preset": "GM"}],
            "experiments": [{"kind": "polling", "msg_kb": 10,
                             "intervals": [1000],
                             "config": {"measure_s": 0.002,
                                        "warmup_s": 0.0005,
                                        "min_cycles": 2}}],
        }))
        assert main(["scenario", str(spec), "--ledger-dir",
                     str(tmp_path / "ledger")]) == 0
        capsys.readouterr()
        records, _ = read_records(ledger_path(tmp_path / "ledger"))
        runs = [r for r in records if r["rec"] == "run"]
        assert len(runs) == 1 and runs[0]["cmd"] == "scenario"


# -------------------------------------------------------- CLI: stream + top
class TestCliStreamAndTop:
    def test_stream_lines_validate_and_top_attaches(self, tmp_path, capsys):
        from repro.obs.live import validate_stream_line

        stream = tmp_path / "stream.ndjson"
        assert main(_figures_argv(
            tmp_path, "--progress-stream", str(stream))) == 0
        capsys.readouterr()
        lines = stream.read_text().splitlines()
        assert lines, "stream file is empty"
        for line in lines:
            assert validate_stream_line(line) == []
        kinds = [json.loads(line)["kind"] for line in lines]
        assert "run_start" in kinds and "run_end" in kinds
        assert kinds.count("point_start") == kinds.count("point_end") > 0
        assert main(["top", str(stream), "--once"]) == 0
        screen = capsys.readouterr().out
        assert "comb top" in screen and "[finished]" in screen

    def test_top_missing_stream_is_one_line_error(self, tmp_path, capsys):
        assert main(["top", str(tmp_path / "absent.ndjson"),
                     "--once"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "Traceback" not in err


# ----------------------------------------------- CLI: one-line I/O errors
class TestUnwritableTargets:
    def test_unwritable_ledger_dir(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the ledger dir should be")
        code = main(["figures", "--ids", "fig04", "--per-decade", "1",
                     "--no-cache", "--no-plots",
                     "--ledger-dir", str(blocker / "ledger")])
        assert code == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("error: cannot open run ledger")
        assert "Traceback" not in captured.err

    def test_unwritable_stream_target(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the stream dir should be")
        code = main(_figures_argv(
            tmp_path, "--progress-stream", str(blocker / "s.ndjson")))
        assert code == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("error: cannot open progress stream")
        assert "Traceback" not in captured.err


# ------------------------------------------------------ CLI: compare formats
def _bench_doc(total_s, fig04_s):
    return {"timestamp": "2026-08-06T00:00:00+00:00", "total_s": total_s,
            "figures": {"fig04": fig04_s}, "claims_ok": True}


class TestCompareJson:
    def test_json_verdict_shape(self, tmp_path, capsys):
        base = tmp_path / "base"
        cand = tmp_path / "cand"
        base.mkdir()
        cand.mkdir()
        for i, total_s in enumerate((10.0, 10.1, 9.9), start=1):
            (base / f"BENCH_{i}.json").write_text(
                json.dumps(_bench_doc(total_s, 1.0)))
        for i, total_s in enumerate((20.0, 20.1, 19.9), start=1):
            (cand / f"BENCH_{i}.json").write_text(
                json.dumps(_bench_doc(total_s, 2.0)))
        code = main(["compare", str(base), str(cand), "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 1 and doc["exit_code"] == 1
        assert doc["schema_version"] == 1
        assert "total_s" in doc["regressions"]
        assert "2 regressions" in doc["exit_rationale"]
        by_name = {c["name"]: c for c in doc["comparisons"]}
        assert by_name["total_s"]["regression"] is True
        assert by_name["total_s"]["ci_low_s"] > 0

    def test_json_insufficient_history(self, tmp_path, capsys):
        hist = tmp_path / "hist"
        hist.mkdir()
        (hist / "BENCH_1.json").write_text(json.dumps(_bench_doc(10.0, 1.0)))
        code = main(["compare", str(hist), "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0 and doc["exit_code"] == 0
        assert "insufficient history" in doc["exit_rationale"]
        assert doc["comparisons"] == []

    def test_ledger_file_as_history_source(self, tmp_path, capsys):
        base = tmp_path / "base"
        base.mkdir()
        (base / "BENCH_1.json").write_text(json.dumps(_bench_doc(2.5, 1.5)))
        path = _seed_ledger(tmp_path / "ledger")
        code = main(["compare", str(base), str(path), "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0 and doc["exit_code"] == 0
        names = {c["name"] for c in doc["comparisons"]}
        assert "total_s" in names  # run records became samples
