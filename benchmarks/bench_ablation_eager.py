"""Ablation (DESIGN.md #4): GM's eager/rendezvous threshold.

The paper traces the 10 KB availability dip to the eager protocol's 45 µs
sends (§4.2).  Moving the threshold below 10 KB switches those messages to
rendezvous (5 µs posts) and recovers the worker's CPU — at these sizes the
handshake costs almost nothing extra in bandwidth.
"""

import dataclasses

from repro.config import gm_system
from repro.core import PollingConfig, run_polling

KB = 1024


def _avail_at_threshold(threshold_bytes: int):
    base = gm_system()
    system = dataclasses.replace(
        base, gm=dataclasses.replace(
            base.gm, eager_threshold_bytes=threshold_bytes
        ),
    )
    return run_polling(system, PollingConfig(
        msg_bytes=10 * KB, poll_interval_iters=1_000, measure_s=0.05,
    ))


def test_ablation_eager_threshold(benchmark):
    """10 KB messages: eager sends depress availability; rendezvous do not."""
    def sweep():
        return {
            "eager (16 KB threshold)": _avail_at_threshold(16 * KB),
            "rendezvous (4 KB threshold)": _avail_at_threshold(4 * KB),
        }

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for label, pt in points.items():
        print(f"  {label:28s}: avail={pt.availability:.3f} "
              f"bw={pt.bandwidth_MBps:6.2f} MB/s")
    eager = points["eager (16 KB threshold)"]
    rndv = points["rendezvous (4 KB threshold)"]
    assert rndv.availability > eager.availability + 0.1
