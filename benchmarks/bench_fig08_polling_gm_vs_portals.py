"""Bench fig08: Polling bandwidth: GM vs Portals (the OS-bypass advantage).

Regenerates the paper's Figure 8 and verifies its claims on the fresh
data; the benchmark time is the cost of the full sweep.
"""

from conftest import BENCH_PER_DECADE, assert_claims, regenerate


def test_fig08_polling_gm_vs_portals(benchmark):
    """Regenerate Figure 8 and check the paper's claims."""
    fig = regenerate(benchmark, "fig08", per_decade=BENCH_PER_DECADE)
    assert_claims(fig)
