"""Bench fig15: Polling bandwidth vs availability for Portals (overhead-bound).

Regenerates the paper's Figure 15 and verifies its claims on the fresh
data; the benchmark time is the cost of the full sweep.
"""

from conftest import BENCH_PER_DECADE, assert_claims, regenerate


def test_fig15_bw_vs_avail_portals(benchmark):
    """Regenerate Figure 15 and check the paper's claims."""
    fig = regenerate(benchmark, "fig15", per_decade=BENCH_PER_DECADE)
    assert_claims(fig)
