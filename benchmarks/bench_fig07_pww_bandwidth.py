"""Bench fig07: PWW method: bandwidth vs work interval (Portals).

Regenerates the paper's Figure 7 and verifies its claims on the fresh
data; the benchmark time is the cost of the full sweep.
"""

from conftest import BENCH_PER_DECADE, assert_claims, regenerate


def test_fig07_pww_bandwidth(benchmark):
    """Regenerate Figure 7 and check the paper's claims."""
    fig = regenerate(benchmark, "fig07", per_decade=BENCH_PER_DECADE)
    assert_claims(fig)
