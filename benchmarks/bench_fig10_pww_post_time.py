"""Bench fig10: PWW average post time: user-level GM vs kernel-trap Portals.

Regenerates the paper's Figure 10 and verifies its claims on the fresh
data; the benchmark time is the cost of the full sweep.
"""

from conftest import BENCH_PER_DECADE, assert_claims, regenerate


def test_fig10_pww_post_time(benchmark):
    """Regenerate Figure 10 and check the paper's claims."""
    fig = regenerate(benchmark, "fig10", per_decade=BENCH_PER_DECADE)
    assert_claims(fig)
