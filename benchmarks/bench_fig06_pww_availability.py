"""Bench fig06: PWW method: CPU availability vs work interval (Portals).

Regenerates the paper's Figure 6 and verifies its claims on the fresh
data; the benchmark time is the cost of the full sweep.
"""

from conftest import BENCH_PER_DECADE, assert_claims, regenerate


def test_fig06_pww_availability(benchmark):
    """Regenerate Figure 6 and check the paper's claims."""
    fig = regenerate(benchmark, "fig06", per_decade=BENCH_PER_DECADE)
    assert_claims(fig)
