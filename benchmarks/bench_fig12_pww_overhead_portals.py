"""Bench fig12: PWW work-phase overhead for Portals (interrupt gap).

Regenerates the paper's Figure 12 and verifies its claims on the fresh
data; the benchmark time is the cost of the full sweep.
"""

from conftest import BENCH_PER_DECADE, assert_claims, regenerate


def test_fig12_pww_overhead_portals(benchmark):
    """Regenerate Figure 12 and check the paper's claims."""
    fig = regenerate(benchmark, "fig12", grid=(100_000, 300_000, 500_000))
    assert_claims(fig)
