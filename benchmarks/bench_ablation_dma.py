"""Ablation (DESIGN.md #2): the host-DMA (PCI) stage bounds GM bandwidth.

The GM plateau emerges from the per-packet pipeline's slowest stage — the
shared host bus — not from a configured constant.  Scaling the bus rate
moves the plateau proportionally while the wire (160 MB/s) stays fixed.
"""

import dataclasses

from repro.config import gm_system
from repro.core import PollingConfig, run_polling

KB = 1024


def _plateau_at(dma_MBps: float) -> float:
    base = gm_system()
    machine = dataclasses.replace(
        base.machine,
        nic=dataclasses.replace(
            base.machine.nic, host_dma_bandwidth_Bps=dma_MBps * 1e6
        ),
    )
    system = dataclasses.replace(base, machine=machine)
    pt = run_polling(system, PollingConfig(
        msg_bytes=100 * KB, poll_interval_iters=1_000, measure_s=0.05,
    ))
    return pt.bandwidth_MBps


def test_ablation_host_dma_bandwidth(benchmark):
    """GM plateau tracks the host-bus rate (the 2002 PCI bottleneck)."""
    def sweep():
        return {mb: _plateau_at(mb) for mb in (60, 91, 130)}

    plateaus = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for mb, bw in plateaus.items():
        print(f"  host bus {mb:4d} MB/s -> plateau {bw:6.2f} MB/s")
    assert plateaus[60] < plateaus[91] < plateaus[130]
    # Within the bus-bound regime the plateau scales roughly linearly.
    assert 0.85 <= plateaus[60] / (plateaus[91] * 60 / 91) <= 1.15
