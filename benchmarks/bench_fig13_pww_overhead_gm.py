"""Bench fig13: PWW work-phase overhead for GM (no gap).

Regenerates the paper's Figure 13 and verifies its claims on the fresh
data; the benchmark time is the cost of the full sweep.
"""

from conftest import BENCH_PER_DECADE, assert_claims, regenerate


def test_fig13_pww_overhead_gm(benchmark):
    """Regenerate Figure 13 and check the paper's claims."""
    fig = regenerate(benchmark, "fig13", grid=(100_000, 300_000, 500_000))
    assert_claims(fig)
