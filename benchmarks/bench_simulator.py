"""Simulator micro-benchmarks: raw event throughput of the DES substrate.

Not a paper figure — these track the cost of the simulation itself so
regressions in the kernel or CPU model show up as slower sweeps.
"""

from repro.config import gm_system, portals_system
from repro.baselines import run_pingpong
from repro.core import PollingConfig, run_polling
from repro.sim import Engine

KB = 1024


def test_engine_event_throughput(benchmark):
    """Plain timeout events through the heap (kernel hot path)."""
    def run():
        engine = Engine()

        def ticker():
            for _ in range(20_000):
                yield engine.timeout(1e-6)

        proc = engine.spawn(ticker())
        engine.run(proc)
        return engine.now

    now = benchmark(run)
    assert abs(now - 0.02) < 1e-9


def test_pingpong_cost(benchmark):
    """A 20-exchange GM ping-pong (MPI + transport + NIC hot path)."""
    result = benchmark(lambda: run_pingpong(gm_system(), 100 * KB))
    assert result.bandwidth_MBps > 30


def test_polling_point_cost(benchmark):
    """One full Portals polling point (the sweep unit of Figs 4/5/15)."""
    def run():
        return run_polling(portals_system(), PollingConfig(
            msg_bytes=100 * KB, poll_interval_iters=1_000, measure_s=0.03,
        ))

    pt = benchmark.pedantic(run, rounds=2, iterations=1)
    assert pt.bandwidth_MBps > 20
