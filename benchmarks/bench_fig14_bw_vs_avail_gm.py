"""Bench fig14: Polling bandwidth vs availability for GM (plus 10 KB eager).

Regenerates the paper's Figure 14 and verifies its claims on the fresh
data; the benchmark time is the cost of the full sweep.
"""

from conftest import BENCH_PER_DECADE, assert_claims, regenerate


def test_fig14_bw_vs_avail_gm(benchmark):
    """Regenerate Figure 14 and check the paper's claims."""
    fig = regenerate(benchmark, "fig14", per_decade=BENCH_PER_DECADE)
    assert_claims(fig)
