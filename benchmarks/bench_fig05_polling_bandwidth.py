"""Bench fig05: Polling method: bandwidth vs poll interval (Portals).

Regenerates the paper's Figure 5 and verifies its claims on the fresh
data; the benchmark time is the cost of the full sweep.
"""

from conftest import BENCH_PER_DECADE, assert_claims, regenerate


def test_fig05_polling_bandwidth(benchmark):
    """Regenerate Figure 5 and check the paper's claims."""
    fig = regenerate(benchmark, "fig05", per_decade=BENCH_PER_DECADE)
    assert_claims(fig)
