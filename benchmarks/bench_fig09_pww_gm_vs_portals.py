"""Bench fig09: PWW bandwidth: GM vs Portals, converging at large work.

Regenerates the paper's Figure 9 and verifies its claims on the fresh
data; the benchmark time is the cost of the full sweep.
"""

from conftest import BENCH_PER_DECADE, assert_claims, regenerate


def test_fig09_pww_gm_vs_portals(benchmark):
    """Regenerate Figure 9 and check the paper's claims."""
    fig = regenerate(benchmark, "fig09", per_decade=BENCH_PER_DECADE)
    assert_claims(fig)
