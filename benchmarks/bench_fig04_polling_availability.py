"""Bench fig04: Polling method: CPU availability vs poll interval (Portals).

Regenerates the paper's Figure 4 and verifies its claims on the fresh
data; the benchmark time is the cost of the full sweep.
"""

from conftest import BENCH_PER_DECADE, assert_claims, regenerate


def test_fig04_polling_availability(benchmark):
    """Regenerate Figure 4 and check the paper's claims."""
    fig = regenerate(benchmark, "fig04", per_decade=BENCH_PER_DECADE)
    assert_claims(fig)
