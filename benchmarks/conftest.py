"""Shared helpers for the per-figure benchmark targets.

Each ``bench_figNN`` module regenerates one results figure of the paper
with ``pytest-benchmark`` timing the regeneration, prints the series the
paper's plot shows, and asserts the paper's qualitative claims on the
fresh data.  Coarse grids (1 point/decade) keep each target in seconds;
``examples/reproduce_paper.py`` runs the full-resolution version.
"""

from __future__ import annotations

import pytest

from repro.analysis import render
from repro.analysis.claims import ALL_CLAIMS
from repro.analysis.figures import ALL_FIGURES, FigureData

#: Benchmark grids: coarse but shape-preserving.
BENCH_PER_DECADE = 1


def regenerate(benchmark, fig_id: str, **kwargs) -> FigureData:
    """Regenerate ``fig_id`` once under the benchmark timer."""
    generator = ALL_FIGURES[fig_id]

    def run() -> FigureData:
        return generator(**kwargs)

    fig = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render(fig))
    return fig


def assert_claims(fig: FigureData) -> None:
    """Check the paper's claims on the regenerated data; fail loudly."""
    results = ALL_CLAIMS[fig.fig_id](fig)
    for claim in results:
        print(f"  [{'PASS' if claim.ok else 'FAIL'}] {claim.claim} "
              f"({claim.detail})")
    failed = [c for c in results if not c.ok]
    assert not failed, "; ".join(f"{c.claim}: {c.detail}" for c in failed)
