"""Ablation (DESIGN.md #5 adjunct): the go-back-N window on Portals.

The window couples sender pacing to receiver interrupt processing.  Larger
windows keep the receiver's kernel queue saturated (lower availability,
slightly higher bandwidth); the calibrated default (3) reproduces the
paper's availability plateau and the monotonic PWW wait decline.
"""

import dataclasses

from repro.config import portals_system
from repro.core import PollingConfig, run_polling

KB = 1024


def _with_window(window: int):
    base = portals_system()
    system = dataclasses.replace(
        base, portals=dataclasses.replace(base.portals, tx_window_pkts=window),
    )
    return run_polling(system, PollingConfig(
        msg_bytes=100 * KB, poll_interval_iters=1_000, measure_s=0.05,
    ))


def test_ablation_tx_window(benchmark):
    """Wider windows trade application CPU for marginal bandwidth."""
    def sweep():
        return {w: _with_window(w) for w in (2, 3, 8)}

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for w, pt in points.items():
        print(f"  window {w:2d}: bw={pt.bandwidth_MBps:6.2f} MB/s "
              f"avail={pt.availability:.3f}")
    assert points[8].availability < points[2].availability
    assert points[8].bandwidth_MBps > points[2].bandwidth_MBps * 0.9
