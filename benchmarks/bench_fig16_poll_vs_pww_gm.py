"""Bench fig16: Bandwidth/availability trade-off: polling vs PWW on GM.

Regenerates the paper's Figure 16 and verifies its claims on the fresh
data; the benchmark time is the cost of the full sweep.
"""

from conftest import BENCH_PER_DECADE, assert_claims, regenerate


def test_fig16_poll_vs_pww_gm(benchmark):
    """Regenerate Figure 16 and check the paper's claims."""
    fig = regenerate(benchmark, "fig16", per_decade=BENCH_PER_DECADE)
    assert_claims(fig)
