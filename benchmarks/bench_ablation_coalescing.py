"""Ablation (DESIGN.md #1): interrupt coalescing on the Portals stack.

Coalescing folds the trap entry/exit of back-to-back interrupts into one.
Because the Portals pipeline is CPU-bound, the saved cycles surface as
*throughput*: bytes moved per CPU-second consumed rises, without touching
the protocol.
"""

from conftest import BENCH_PER_DECADE  # noqa: F401  (shared sys.path hook)

from repro.config import portals_system
from repro.core import PollingConfig, run_polling
from repro.ext import coalesced_portals

KB = 1024


def _plateau(system):
    pt = run_polling(system, PollingConfig(
        msg_bytes=100 * KB, poll_interval_iters=1_000, measure_s=0.05,
    ))
    return pt


def _efficiency(pt):
    """Payload bytes per CPU-second taken from the application."""
    return pt.bandwidth_Bps / max(1e-9, 1.0 - pt.availability)


def test_ablation_interrupt_coalescing(benchmark):
    """Coalescing raises throughput per CPU-second consumed."""
    base = _plateau(portals_system())

    coalesced = benchmark.pedantic(
        lambda: _plateau(coalesced_portals()), rounds=1, iterations=1
    )
    print(f"\n  stock    : bw={base.bandwidth_MBps:6.2f} MB/s "
          f"avail={base.availability:.3f} eff={_efficiency(base) / 1e6:.1f}")
    print(f"  coalesced: bw={coalesced.bandwidth_MBps:6.2f} MB/s "
          f"avail={coalesced.availability:.3f} "
          f"eff={_efficiency(coalesced) / 1e6:.1f}")
    assert _efficiency(coalesced) > _efficiency(base) * 1.03
    assert coalesced.bandwidth_MBps > base.bandwidth_MBps
