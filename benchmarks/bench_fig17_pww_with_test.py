"""Bench fig17: One MPI_Test in the work phase restores GM overlap.

Regenerates the paper's Figure 17 and verifies its claims on the fresh
data; the benchmark time is the cost of the full sweep.
"""

from conftest import BENCH_PER_DECADE, assert_claims, regenerate


def test_fig17_pww_with_test(benchmark):
    """Regenerate Figure 17 and check the paper's claims."""
    fig = regenerate(benchmark, "fig17", per_decade=BENCH_PER_DECADE)
    assert_claims(fig)
