"""Ablation (DESIGN.md #3): the progress-engine split is the whole story.

Putting offloaded progress on GM-class hardware (the idealized no-interrupt
offload NIC) collapses the PWW wait phase that library-polled GM cannot
escape — isolating the single design choice behind Figures 11, 13 and 17.
"""

from repro.config import gm_system
from repro.core import CombSuite, PwwConfig, run_pww
from repro.ext import offload_nic_system

KB = 1024
LONG_WORK = 10_000_000


def test_ablation_progress_model(benchmark):
    """Offloaded progress drains the wait phase; library-polled keeps it."""
    def run():
        gm = run_pww(gm_system(), PwwConfig(
            msg_bytes=100 * KB, work_interval_iters=LONG_WORK,
        ))
        offload = run_pww(offload_nic_system(), PwwConfig(
            msg_bytes=100 * KB, work_interval_iters=LONG_WORK,
        ))
        return gm, offload

    gm, offload = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  GM (library-polled): wait={gm.wait_s * 1e6:8.1f} us")
    print(f"  OffloadNIC         : wait={offload.wait_s * 1e6:8.1f} us")
    assert gm.wait_s > 1e-3, "GM should still pay the transfer in the wait"
    assert offload.wait_s < 2e-4, "offloaded progress should drain the wait"
    # Neither steals CPU during work (both are interrupt-free).
    assert abs(gm.overhead_s) < 5e-5
    assert abs(offload.overhead_s) < 5e-5
