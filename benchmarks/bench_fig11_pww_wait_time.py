"""Bench fig11: PWW average wait time: the application-offload signature.

Regenerates the paper's Figure 11 and verifies its claims on the fresh
data; the benchmark time is the cost of the full sweep.
"""

from conftest import BENCH_PER_DECADE, assert_claims, regenerate


def test_fig11_pww_wait_time(benchmark):
    """Regenerate Figure 11 and check the paper's claims."""
    fig = regenerate(benchmark, "fig11", per_decade=BENCH_PER_DECADE)
    assert_claims(fig)
