"""Ablation: wire loss vs the reliability layer (kernel transports).

The paper's Portals stack runs over a kernel module providing "reliability
and flow control for Myrinet packets".  This bench injects packet loss and
measures how the go-back-N machinery degrades polling bandwidth — retries
consume wire *and* CPU, so lossy links hurt kernel transports twice.
"""

import dataclasses

from repro.config import FaultConfig, portals_system
from repro.core import PollingConfig, run_polling

KB = 1024


def _lossy(rate: float):
    base = portals_system()
    machine = dataclasses.replace(
        base.machine, fault=FaultConfig(data_loss_rate=rate)
    )
    return dataclasses.replace(base, machine=machine)


def test_ablation_wire_loss(benchmark):
    """Bandwidth degrades monotonically with loss; transfers still finish."""
    def sweep():
        out = {}
        for rate in (0.0, 0.02, 0.10):
            out[rate] = run_polling(_lossy(rate), PollingConfig(
                msg_bytes=100 * KB, poll_interval_iters=1_000,
                measure_s=0.05,
            ))
        return out

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for rate, pt in points.items():
        print(f"  loss={rate:4.0%}: bw={pt.bandwidth_MBps:6.2f} MB/s "
              f"avail={pt.availability:.3f} msgs={pt.msgs}")
    assert points[0.0].bandwidth_MBps > points[0.02].bandwidth_MBps
    assert points[0.02].bandwidth_MBps > points[0.10].bandwidth_MBps
    # Even at 10% loss the suite keeps moving messages.
    assert points[0.10].msgs > 0
