#!/usr/bin/env python3
"""Standalone comb-lint entry point (pre-commit / CI / uninstalled trees).

Equivalent to ``comb lint`` but importable without installing the
package: it prepends ``src/`` to ``sys.path`` and forwards its arguments
unchanged::

    python tools/lint.py src --format=json
    python tools/lint.py src/repro/sim/engine.py   # pre-commit passes files
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.cli import main  # noqa: E402


if __name__ == "__main__":
    argv = sys.argv[1:]
    # Default the baseline to the repo's copy regardless of CWD.
    if not any(a.startswith("--baseline") for a in argv):
        argv = ["--baseline", str(ROOT / "tools" / "lint_baseline.json"),
                *argv]
    sys.exit(main(["lint", *argv]))
