#!/usr/bin/env python3
"""Record one point of the suite's performance trajectory.

Runs the coarse benchmark grid (the same figures the per-figure
``benchmarks/bench_figNN`` targets regenerate, at 1 point/decade by
default), times each figure, and appends a timestamped ``BENCH_<n>.json``
to the output directory — ``<n>`` is one past the highest existing record,
so the directory accumulates a perf trajectory across PRs::

    python tools/bench_report.py                        # all figures, serial
    python tools/bench_report.py --ids fig04 fig11 --jobs 2
    python tools/bench_report.py --no-cache             # cold measurements
    python tools/bench_report.py --compare --fail-on-regression  # sentinel

Each record carries total wall time, per-figure wall time, executor cache
hit rate, and the run's configuration, e.g.::

    {
      "timestamp": "2026-08-06T12:00:00+00:00",
      "per_decade": 1, "jobs": 1,
      "total_s": 9.31,
      "figures": {"fig04": 1.52, ...},
      "cache": {"hits": 0, "misses": 118, "hit_rate": 0.0},
      "claims_ok": true
    }
"""

from __future__ import annotations

import argparse
import json
import platform
import re
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import run_figure  # noqa: E402
from repro.analysis.figures import ALL_FIGURES  # noqa: E402
from repro.core import PointCache, SweepExecutor  # noqa: E402
from repro.core.executor import DEFAULT_CACHE_DIR, code_salt  # noqa: E402
from repro.obs import MetricsRegistry  # noqa: E402

DEFAULT_OUT_DIR = Path("results") / "bench"


def next_record_path(out_dir: Path) -> Path:
    """``BENCH_<n>.json`` with ``n`` = highest existing + 1 (1-based)."""
    highest = 0
    for f in out_dir.glob("BENCH_*.json"):
        m = re.fullmatch(r"BENCH_(\d+)\.json", f.name)
        if m:
            highest = max(highest, int(m.group(1)))
    return out_dir / f"BENCH_{highest + 1}.json"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ids", nargs="*", default=None,
                        help="subset of figure ids (default: all)")
    parser.add_argument("--per-decade", type=int, default=1,
                        help="grid resolution (default: 1, the coarse grid)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for sweep points")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk point cache")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help="point-cache directory")
    parser.add_argument("--out-dir", default=str(DEFAULT_OUT_DIR),
                        help=f"trajectory directory (default: {DEFAULT_OUT_DIR})")
    parser.add_argument("--compare", action="store_true",
                        help="after recording, judge the new record against "
                        "the trajectory's older records (regression "
                        "sentinel; see repro.obs.compare)")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="with --compare: exit nonzero when the new "
                        "record regresses significantly")
    args = parser.parse_args()

    ids = list(args.ids) if args.ids else sorted(ALL_FIGURES)
    unknown = [i for i in ids if i not in ALL_FIGURES]
    if unknown:
        parser.error(f"unknown figure ids: {unknown}; have {sorted(ALL_FIGURES)}")

    cache = None if args.no_cache else PointCache(args.cache_dir)
    registry = MetricsRegistry()
    per_figure: dict = {}
    claims_ok = True
    t_total = time.time()
    with SweepExecutor(jobs=args.jobs, cache=cache,
                       metrics=registry) as executor:
        for fig_id in ids:
            t0 = time.time()
            report = run_figure(fig_id, per_decade=args.per_decade,
                                executor=executor)
            per_figure[fig_id] = round(time.time() - t0, 4)
            claims_ok = claims_ok and report.ok
            print(f"{fig_id}: {per_figure[fig_id]:7.2f}s "
                  f"({'ok' if report.ok else 'CLAIMS FAILED'})")
        stats = executor.stats
    total_s = time.time() - t_total

    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "per_decade": args.per_decade,
        "jobs": args.jobs,
        "cache_enabled": cache is not None,
        "code_salt": code_salt(),
        "python": platform.python_version(),
        "total_s": round(total_s, 4),
        "figures": per_figure,
        "cache": stats.to_dict(),
        # Wall-clock stage profile from the observability layer: cache
        # lookup latency, per-point simulation wall times, fan-out
        # utilization (see docs/observability.md).
        "metrics": registry.to_dict(),
        "claims_ok": claims_ok,
    }
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = next_record_path(out_dir)
    path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\ntotal {total_s:.2f}s, cache hit rate "
          f"{stats.hit_rate:.0%} ({stats.hits}/{stats.lookups})")
    print(f"wrote {path}")
    if args.compare:
        from repro.obs.compare import DEFAULT_MIN_RECORDS, compare_history

        report = compare_history(out_dir)
        if report is None:
            print(f"compare: fewer than {DEFAULT_MIN_RECORDS + 1} BENCH "
                  f"records in {out_dir}; nothing to judge yet")
        else:
            print(f"compare: {path.name} vs the trajectory's older records")
            print(report.format())
            if args.fail_on_regression and report.exit_code:
                return report.exit_code
    return 0 if claims_ok else 1


if __name__ == "__main__":
    sys.exit(main())
