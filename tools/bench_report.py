#!/usr/bin/env python3
"""Record one point of the suite's performance trajectory.

Thin CLI over :mod:`repro.core.bench` (also exposed as ``comb bench``).
Runs the coarse benchmark grid (the same figures the per-figure
``benchmarks/bench_figNN`` targets regenerate, at 1 point/decade by
default), times each figure, and appends a timestamped ``BENCH_<n>.json``
to the output directory — ``<n>`` is one past the highest existing record,
so the directory accumulates a perf trajectory across PRs::

    python tools/bench_report.py                        # all figures, serial
    python tools/bench_report.py --ids fig04 fig11 --jobs 2
    python tools/bench_report.py --no-cache             # cold measurements
    python tools/bench_report.py --compare --fail-on-regression  # sentinel
    python tools/bench_report.py --profile fig04        # embed cProfile top

Each record carries total wall time, per-figure wall time, executor cache
hit rate, the engine event count, whether the compiled core was active,
and the run's configuration, e.g.::

    {
      "timestamp": "2026-08-06T12:00:00+00:00",
      "per_decade": 1, "jobs": 1,
      "compiled": false,
      "total_s": 9.31,
      "figures": {"fig04": 1.52, ...},
      "cache": {"hits": 0, "misses": 118, "hit_rate": 0.0},
      "events_processed": 8113540,
      "claims_ok": true
    }
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import PointCache  # noqa: E402
from repro.core.bench import DEFAULT_OUT_DIR, run_bench, write_record  # noqa: E402
from repro.core.executor import DEFAULT_CACHE_DIR  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ids", nargs="*", default=None,
                        help="subset of figure ids (default: all)")
    parser.add_argument("--per-decade", type=int, default=1,
                        help="grid resolution (default: 1, the coarse grid)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for sweep points")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk point cache")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help="point-cache directory")
    parser.add_argument("--out-dir", default=str(DEFAULT_OUT_DIR),
                        help=f"trajectory directory (default: {DEFAULT_OUT_DIR})")
    parser.add_argument("--profile", default=None, metavar="FIGID",
                        help="additionally cProfile one figure and embed "
                        "the top cumulative-time rows in the record")
    parser.add_argument("--compare", action="store_true",
                        help="after recording, judge the new record against "
                        "the trajectory's older records (regression "
                        "sentinel; see repro.obs.compare)")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="with --compare: exit nonzero when the new "
                        "record regresses significantly")
    parser.add_argument("--no-ledger", action="store_true",
                        help="skip appending this run to the persistent "
                        "run ledger")
    parser.add_argument("--ledger-dir", default=None, metavar="DIR",
                        help="run-ledger directory (default: "
                        "results/ledger)")
    args = parser.parse_args()

    ledger = None
    if not args.no_ledger:
        import uuid

        from repro.obs.ledger import DEFAULT_LEDGER_DIR, RunLedger

        ledger_dir = Path(args.ledger_dir) if args.ledger_dir \
            else DEFAULT_LEDGER_DIR
        try:
            ledger = RunLedger(ledger_dir, uuid.uuid4().hex[:12], "bench")
        except OSError as exc:
            print(f"error: cannot open run ledger under {ledger_dir}: "
                  f"{exc}", file=sys.stderr)
            return 1

    cache = None if args.no_cache else PointCache(args.cache_dir)
    try:
        record = run_bench(ids=args.ids, per_decade=args.per_decade,
                           jobs=args.jobs, cache=cache,
                           profile=args.profile, echo=print,
                           ledger=ledger)
    except ValueError as exc:
        parser.error(str(exc))
    finally:
        if ledger is not None:
            ledger.close()
    path = write_record(record, args.out_dir)
    cache_doc = record["cache"]
    lookups = cache_doc["hits"] + cache_doc["misses"]
    print(f"\ntotal {record['total_s']:.2f}s, cache hit rate "
          f"{cache_doc['hit_rate']:.0%} "
          f"({cache_doc['hits']}/{lookups})")
    print(f"wrote {path}")
    if args.compare:
        from repro.obs.compare import DEFAULT_MIN_RECORDS, compare_history

        out_dir = Path(args.out_dir)
        report = compare_history(out_dir)
        if report is None:
            print(f"compare: fewer than {DEFAULT_MIN_RECORDS + 1} BENCH "
                  f"records in {out_dir}; nothing to judge yet")
        else:
            print(f"compare: {path.name} vs the trajectory's older records")
            print(report.format())
            if args.fail_on_regression and report.exit_code:
                return report.exit_code
    return 0 if record["claims_ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
