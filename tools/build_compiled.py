#!/usr/bin/env python3
"""Build the optional compiled simulation core (see :mod:`repro.compiled`).

Compiles the hand-written C accelerator (``src/repro/_simcore.c`` —
the ``Event`` + ``Engine`` kernel) into the extension module
``repro._simcore``, in place next to its source, so a later
``COMB_COMPILED=1`` run transparently loads it::

    python tools/build_compiled.py            # build (or say why not)
    python tools/build_compiled.py --check    # report toolchain + status
    python tools/build_compiled.py --clean    # remove built extensions

The build needs only a C compiler and the Python development headers —
no pip packages.  It is **optional by design**: when the toolchain is
missing this script prints a visible notice and exits 0, and the suite
runs on the pure Python core exactly as before.  CI uses the same
contract — the compiled leg degrades to a loud skip, never a failure.

After building, verify bit-identity the same way CI does::

    COMB_COMPILED=1 python -m pytest -q
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys
import sysconfig
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"

sys.path.insert(0, str(SRC_ROOT))

from repro import compiled  # noqa: E402

SKIP_NOTICE = (
    "=" * 70 + "\n"
    "NOTICE: compiled core NOT built — no C toolchain or Python headers.\n"
    "The suite runs on the pure Python core (bit-identical results).\n"
    "To build: install a C compiler (cc/gcc/clang) and the CPython\n"
    "development headers, then re-run tools/build_compiled.py.\n" + "=" * 70
)


def _compiler() -> str | None:
    """The C compiler to use, or ``None`` if none is on PATH."""
    configured = sysconfig.get_config_var("CC")
    candidates = []
    if configured:
        # CC may carry flags ("gcc -pthread"); the executable is word one.
        candidates.append(configured.split()[0])
    candidates += ["cc", "gcc", "clang"]
    for cand in candidates:
        if shutil.which(cand):
            return cand
    return None


def _include_dir() -> Path | None:
    """The CPython header directory, or ``None`` when headers are absent."""
    include = Path(sysconfig.get_paths()["include"])
    return include if (include / "Python.h").exists() else None


def toolchain_available() -> bool:
    """``True`` when a C compiler and the Python headers are present."""
    return _compiler() is not None and _include_dir() is not None


def _ext_suffix() -> str:
    return sysconfig.get_config_var("EXT_SUFFIX") or ".so"


def built_extensions() -> list:
    """Extension files a previous build left next to the sources."""
    exts = []
    for src in compiled.build_targets(SRC_ROOT):
        stem = src.stem  # _simcore
        for suffix in (".so", ".pyd"):
            exts.extend(sorted(src.parent.glob(f"{stem}*{suffix}")))
    return exts


def clean() -> int:
    """Remove built extension modules (back to the pure Python core)."""
    removed = built_extensions()
    for ext in removed:
        ext.unlink()
    print(f"removed {len(removed)} extension module(s)")
    return 0


def check() -> int:
    """Report toolchain availability and the current gate state."""
    status = compiled.status()
    cc = _compiler()
    inc = _include_dir()
    print(f"toolchain: cc {cc or 'NOT found'}; "
          f"Python.h {'found' if inc else 'NOT found'}")
    print(f"built extensions: {len(built_extensions())}")
    print(f"gate: requested={status['requested']} active={status['active']}")
    print(f"  {status['detail']}")
    return 0


def build() -> int:
    """Compile the accelerator in place; 0 on success or clean skip."""
    if not toolchain_available():
        print(SKIP_NOTICE)
        return 0
    cc = _compiler()
    include = _include_dir()
    rc = 0
    built = []
    for src in compiled.build_targets(SRC_ROOT):
        if not src.exists():
            print(f"SKIP {src}: source not found", file=sys.stderr)
            continue
        out = src.parent / (src.stem + _ext_suffix())
        cmd = [
            str(cc), "-O2", "-fPIC", "-shared", "-fno-strict-aliasing",
            f"-I{include}", str(src), "-o", str(out),
        ]
        print(" ".join(cmd))
        result = subprocess.run(cmd, cwd=str(REPO_ROOT))
        if result.returncode != 0:
            print(f"build FAILED for {src.name}; "
                  "the pure Python core remains in use", file=sys.stderr)
            # A failed compile must not leave a stale half-written .so.
            if out.exists():
                out.unlink()
            rc = result.returncode
            continue
        built.append(out)
    if rc == 0 and built:
        print(f"built {len(built)} extension module(s); enable with "
              f"{compiled.ENV_FLAG}=1")
        # Smoke-import in a fresh process under the flag: a build that
        # cannot even swap in should fail loudly here, not at use time.
        env = dict(os.environ, COMB_COMPILED="1",
                   PYTHONPATH=str(SRC_ROOT))
        probe = subprocess.run(
            [sys.executable, "-c",
             "from repro import compiled; assert compiled.active(), "
             "compiled.status()"],
            env=env, cwd=str(REPO_ROOT))
        if probe.returncode != 0:
            print("smoke import FAILED; removing the built extension",
                  file=sys.stderr)
            for out in built:
                out.unlink()
            return probe.returncode
    return rc


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--check", action="store_true",
                       help="report toolchain and gate status; no build")
    group.add_argument("--clean", action="store_true",
                       help="remove built extension modules")
    args = parser.parse_args()
    if args.check:
        return check()
    if args.clean:
        return clean()
    return build()


if __name__ == "__main__":
    sys.exit(main())
